//! Sparse, page-granular, copy-on-write backing store for memory devices.
//!
//! Forking a fleet device used to deep-copy every byte of its RAM, so a
//! 64-device fan-out spent tens of milliseconds cloning megabytes of
//! mostly-zero memory. [`PageStore`] replaces the flat `Vec<u8>` behind
//! [`crate::Ram`]/[`crate::Rom`] with a vector of optional 4 KiB pages:
//!
//! * an **absent** page reads as zero and costs nothing to store or copy;
//! * a **present** page is an `Arc<Page>` — snapshotting the store is one
//!   reference-count bump per resident page, O(pages-present) instead of
//!   O(size);
//! * the write paths (`write8`/`write32`/`fill`/`host_load`) materialize
//!   absent pages lazily and clone shared pages on first write
//!   (`Arc::make_mut`), so divergence after a fork is private to the
//!   writer and invisible to every other holder of the page.
//!
//! The paging is a host-simulator artifact, invisible to the guest ISA,
//! the EA-MPU and all digests: every observable read/write/error is
//! byte-identical to a dense flat array (`tests` and the workspace
//! differential property tests enforce this). A *dense* mode —
//! [`PageStore::new_dense`] / [`PageStore::set_dense`] — keeps every page
//! materialized and deep-copies on snapshot, reproducing the pre-sparse
//! behaviour as the reference side of dense-vs-sparse differential runs
//! (`tlfleet --dense-mem`, the CI `fork-identity` job).

use core::fmt;
use std::sync::Arc;

/// Log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Size of one backing page in bytes (4 KiB).
pub const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;
const PAGE_MASK: usize = PAGE_SIZE as usize - 1;

/// One 4 KiB backing page.
#[derive(Clone)]
pub struct Page(pub [u8; PAGE_SIZE as usize]);

impl Page {
    fn filled(pattern: u8) -> Page {
        Page([pattern; PAGE_SIZE as usize])
    }
}

/// A sparse page-granular store of `size` logical bytes.
///
/// All offset-taking methods expect in-range offsets (callers — the
/// memory devices — bounds-check first and surface `BusError`s); word
/// accessors tolerate page-straddling unaligned offsets by falling back
/// to byte access.
#[derive(Clone)]
pub struct PageStore {
    size: u32,
    pages: Vec<Option<Arc<Page>>>,
    /// Dense mode: every page stays materialized and uniquely owned, and
    /// [`PageStore::snapshot`] deep-copies — the pre-sparse reference
    /// behaviour for differential runs.
    dense: bool,
}

impl fmt::Debug for PageStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageStore")
            .field("size", &self.size)
            .field("resident_pages", &self.resident_pages())
            .field("dense", &self.dense)
            .finish()
    }
}

impl PageStore {
    /// Creates a sparse zeroed store of `size` bytes (no pages resident).
    pub fn new(size: u32) -> PageStore {
        let npages = (size as usize).div_ceil(PAGE_SIZE as usize);
        PageStore {
            size,
            pages: vec![None; npages],
            dense: false,
        }
    }

    /// Creates a dense zeroed store: every page materialized up front and
    /// deep-copied on snapshot.
    pub fn new_dense(size: u32) -> PageStore {
        let mut store = PageStore::new(size);
        store.set_dense(true);
        store
    }

    /// Logical size in bytes.
    #[inline(always)]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether the store runs in dense (reference) mode.
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Switches backing mode. `true` materializes every page and unshares
    /// them (deep copies of shared pages); `false` drops all-zero pages
    /// so the store re-sparsifies. Contents are unchanged either way.
    pub fn set_dense(&mut self, dense: bool) {
        self.dense = dense;
        if dense {
            for slot in &mut self.pages {
                match slot {
                    Some(page) => {
                        // Force unique ownership: make_mut deep-copies
                        // iff the page is shared.
                        let _ = Arc::make_mut(page);
                    }
                    None => *slot = Some(Arc::new(Page::filled(0))),
                }
            }
        } else {
            for slot in &mut self.pages {
                if slot.as_ref().is_some_and(|p| p.0.iter().all(|&b| b == 0)) {
                    *slot = None;
                }
            }
        }
    }

    /// Number of resident (materialized) pages. Shared pages count once
    /// per *slot*, not once per physical allocation: residency reports
    /// the guest-visible footprint, not host allocator behaviour.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Resident bytes, with the tail page capped at the logical size.
    pub fn resident_bytes(&self) -> u64 {
        let mut total = 0u64;
        for (i, page) in self.pages.iter().enumerate() {
            if page.is_some() {
                let base = (i as u64) << PAGE_SHIFT;
                total += u64::from(PAGE_SIZE).min(u64::from(self.size) - base);
            }
        }
        total
    }

    /// Number of page slots physically shared (same allocation) with
    /// `other` at the same page index — diagnostics for COW tests.
    pub fn shared_pages_with(&self, other: &PageStore) -> usize {
        self.pages
            .iter()
            .zip(other.pages.iter())
            .filter(|(a, b)| match (a, b) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            })
            .count()
    }

    /// Reads one byte; absent pages read as zero.
    #[inline(always)]
    pub fn read8(&self, off: u32) -> u8 {
        debug_assert!(off < self.size);
        let i = off as usize;
        match &self.pages[i >> PAGE_SHIFT] {
            Some(p) => p.0[i & PAGE_MASK],
            None => 0,
        }
    }

    /// Reads a little-endian 32-bit word. Aligned words never straddle a
    /// page; the unaligned-straddle case falls back to byte reads.
    #[inline(always)]
    pub fn read32(&self, off: u32) -> u32 {
        debug_assert!(off as u64 + 4 <= u64::from(self.size));
        let i = off as usize;
        let lane = i & PAGE_MASK;
        if lane <= PAGE_MASK - 3 {
            match &self.pages[i >> PAGE_SHIFT] {
                Some(p) => {
                    let b = &p.0[lane..lane + 4];
                    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
                }
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read8(off),
                self.read8(off + 1),
                self.read8(off + 2),
                self.read8(off + 3),
            ])
        }
    }

    /// The page containing `off`, materialized and uniquely owned
    /// (cloned on first write when shared with a fork).
    #[inline(always)]
    fn page_mut(&mut self, off: u32) -> &mut Page {
        let slot = &mut self.pages[(off as usize) >> PAGE_SHIFT];
        if slot.is_none() {
            *slot = Some(Arc::new(Page::filled(0)));
        }
        Arc::make_mut(slot.as_mut().expect("just materialized"))
    }

    /// Writes one byte. Writing zero to an absent page is a no-op in
    /// sparse mode (the page already reads as zero), so zeroing loops
    /// never materialize anything.
    #[inline(always)]
    pub fn write8(&mut self, off: u32, value: u8) {
        debug_assert!(off < self.size);
        if value == 0 && self.pages[(off as usize) >> PAGE_SHIFT].is_none() {
            return;
        }
        self.page_mut(off).0[off as usize & PAGE_MASK] = value;
    }

    /// Writes a little-endian 32-bit word (see [`PageStore::write8`] for
    /// the zero-to-absent-page shortcut).
    #[inline(always)]
    pub fn write32(&mut self, off: u32, value: u32) {
        debug_assert!(off as u64 + 4 <= u64::from(self.size));
        let lane = off as usize & PAGE_MASK;
        if lane <= PAGE_MASK - 3 {
            if value == 0 && self.pages[(off as usize) >> PAGE_SHIFT].is_none() {
                return;
            }
            self.page_mut(off).0[lane..lane + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (k, b) in value.to_le_bytes().into_iter().enumerate() {
                self.write8(off + k as u32, b);
            }
        }
    }

    /// Fills the whole store with `pattern`. Filling with zero drops
    /// every page (in sparse mode); a nonzero fill shares one filled
    /// prototype page across all slots — writes after the fill unshare
    /// page by page, exactly like post-fork divergence.
    pub fn fill(&mut self, pattern: u8) {
        if pattern == 0 && !self.dense {
            for slot in &mut self.pages {
                *slot = None;
            }
            return;
        }
        let proto = Arc::new(Page::filled(pattern));
        for slot in &mut self.pages {
            *slot = Some(if self.dense {
                Arc::new(Page::filled(pattern))
            } else {
                Arc::clone(&proto)
            });
        }
    }

    /// Host-side bulk load. Returns false (leaving the store untouched)
    /// when the span exceeds the logical size. All-zero chunks landing on
    /// absent pages are skipped, so zero-padded image loads stay sparse.
    pub fn host_load(&mut self, off: u32, bytes: &[u8]) -> bool {
        let start = off as usize;
        let Some(end) = start.checked_add(bytes.len()) else {
            return false;
        };
        if end > self.size as usize {
            return false;
        }
        let mut cur = start;
        let mut src = bytes;
        while !src.is_empty() {
            let lane = cur & PAGE_MASK;
            let span = (PAGE_SIZE as usize - lane).min(src.len());
            let (chunk, rest) = src.split_at(span);
            let absent = self.pages[cur >> PAGE_SHIFT].is_none();
            if !(absent && !self.dense && chunk.iter().all(|&b| b == 0)) {
                self.page_mut(cur as u32).0[lane..lane + span].copy_from_slice(chunk);
            }
            cur += span;
            src = rest;
        }
        true
    }

    /// Copies the store for snapshot/fork: one `Arc` bump per resident
    /// page in sparse mode, a full deep copy in dense mode.
    pub fn snapshot(&self) -> PageStore {
        if !self.dense {
            return self.clone();
        }
        PageStore {
            size: self.size,
            pages: self
                .pages
                .iter()
                .map(|p| p.as_ref().map(|a| Arc::new(Page(a.0))))
                .collect(),
            dense: true,
        }
    }

    /// Materializes the full contents (diagnostics; O(size)).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.size as usize];
        for (i, page) in self.pages.iter().enumerate() {
            if let Some(p) = page {
                let base = i << PAGE_SHIFT;
                let span = (self.size as usize - base).min(PAGE_SIZE as usize);
                out[base..base + span].copy_from_slice(&p.0[..span]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_pages_read_zero_and_cost_nothing() {
        let s = PageStore::new(3 * PAGE_SIZE);
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.read32(0), 0);
        assert_eq!(s.read8(2 * PAGE_SIZE + 5), 0);
    }

    #[test]
    fn writes_materialize_only_the_touched_page() {
        let mut s = PageStore::new(4 * PAGE_SIZE);
        s.write32(PAGE_SIZE + 8, 0xdead_beef);
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.read32(PAGE_SIZE + 8), 0xdead_beef);
        assert_eq!(s.read32(PAGE_SIZE + 4), 0);
    }

    #[test]
    fn zero_writes_to_absent_pages_stay_sparse() {
        let mut s = PageStore::new(2 * PAGE_SIZE);
        s.write32(0, 0);
        s.write8(PAGE_SIZE + 1, 0);
        assert_eq!(s.resident_pages(), 0);
        // But a zero write to a *present* page really lands.
        s.write8(3, 0xff);
        s.write8(3, 0);
        assert_eq!(s.read8(3), 0);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn snapshot_shares_then_cow_unshares() {
        let mut a = PageStore::new(4 * PAGE_SIZE);
        a.write32(0, 7);
        a.write32(2 * PAGE_SIZE, 9);
        let mut b = a.snapshot();
        assert_eq!(b.shared_pages_with(&a), 2, "fork is Arc bumps");
        b.write32(0, 8);
        assert_eq!(b.shared_pages_with(&a), 1, "first write unshares");
        assert_eq!(a.read32(0), 7, "parent unaffected");
        assert_eq!(b.read32(0), 8);
        a.write32(2 * PAGE_SIZE, 10);
        assert_eq!(b.read32(2 * PAGE_SIZE), 9, "child unaffected");
    }

    #[test]
    fn fill_zero_drops_pages_fill_pattern_shares_one() {
        let mut s = PageStore::new(4 * PAGE_SIZE);
        s.fill(0xcc);
        assert_eq!(s.resident_pages(), 4);
        assert_eq!(s.read8(3 * PAGE_SIZE + 7), 0xcc);
        // Writing one byte after a shared fill must not alias the others.
        s.write8(0, 1);
        assert_eq!(s.read8(PAGE_SIZE), 0xcc);
        s.fill(0);
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.read8(0), 0);
    }

    #[test]
    fn host_load_straddles_pages_and_skips_zero_chunks() {
        let mut s = PageStore::new(3 * PAGE_SIZE);
        let img: Vec<u8> = (0..=255).cycle().take(PAGE_SIZE as usize + 64).collect();
        assert!(s.host_load(PAGE_SIZE - 32, &img));
        assert_eq!(s.to_vec()[PAGE_SIZE as usize - 32..][..img.len()], img[..]);
        assert_eq!(s.resident_pages(), 3);
        let mut z = PageStore::new(3 * PAGE_SIZE);
        assert!(z.host_load(0, &vec![0u8; 2 * PAGE_SIZE as usize]));
        assert_eq!(z.resident_pages(), 0, "zero image stays sparse");
        assert!(!z.host_load(2 * PAGE_SIZE, &[0; PAGE_SIZE as usize + 1]));
    }

    #[test]
    fn unaligned_word_access_straddling_a_page_boundary() {
        let mut s = PageStore::new(2 * PAGE_SIZE);
        s.write32(PAGE_SIZE - 2, 0x0403_0201);
        assert_eq!(s.read8(PAGE_SIZE - 1), 0x02);
        assert_eq!(s.read8(PAGE_SIZE), 0x03);
        assert_eq!(s.read32(PAGE_SIZE - 2), 0x0403_0201);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn dense_mode_materializes_and_deep_copies() {
        let mut s = PageStore::new_dense(2 * PAGE_SIZE);
        assert_eq!(s.resident_pages(), 2);
        s.write32(0, 5);
        let b = s.snapshot();
        assert_eq!(b.shared_pages_with(&s), 0, "dense snapshot deep-copies");
        assert_eq!(b.read32(0), 5);
        // Densify/sparsify round-trips contents.
        let mut t = PageStore::new(2 * PAGE_SIZE);
        t.write32(PAGE_SIZE, 3);
        t.set_dense(true);
        assert_eq!(t.resident_pages(), 2);
        t.set_dense(false);
        assert_eq!(t.resident_pages(), 1, "zero pages dropped again");
        assert_eq!(t.read32(PAGE_SIZE), 3);
    }

    #[test]
    fn tail_page_resident_bytes_capped_at_size() {
        let mut s = PageStore::new(PAGE_SIZE + 16);
        s.write8(PAGE_SIZE + 1, 1);
        assert_eq!(s.resident_bytes(), 16);
        s.write8(0, 1);
        assert_eq!(s.resident_bytes(), u64::from(PAGE_SIZE) + 16);
    }
}
