//! Volatile and read-only memory devices.

use std::any::Any;

use crate::device::{BusError, Device};

/// A plain RAM device (used for both on-chip SRAM and external DRAM).
#[derive(Debug, Clone)]
pub struct Ram {
    name: &'static str,
    data: Vec<u8>,
}

impl Ram {
    /// Creates a zeroed RAM of `size` bytes.
    pub fn new(name: &'static str, size: u32) -> Self {
        Ram {
            name,
            data: vec![0; size as usize],
        }
    }

    /// Direct host access to the contents (diagnostics, assertions).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Fills the entire memory with a byte pattern (used to model the
    /// "memory not sanitized across reset" behaviour the Secure Loader
    /// defends against).
    pub fn fill(&mut self, pattern: u8) {
        self.data.fill(pattern);
    }
}

impl Device for Ram {
    fn name(&self) -> &'static str {
        self.name
    }

    fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        let i = off as usize;
        let b = &self.data[i..i + 4];
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn write32(&mut self, off: u32, value: u32) -> Result<(), BusError> {
        let i = off as usize;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        Ok(self.data[off as usize])
    }

    fn write8(&mut self, off: u32, value: u8) -> Result<(), BusError> {
        self.data[off as usize] = value;
        Ok(())
    }

    fn host_load(&mut self, off: u32, bytes: &[u8]) -> bool {
        let start = off as usize;
        let end = start + bytes.len();
        if end > self.data.len() {
            return false;
        }
        self.data[start..end].copy_from_slice(bytes);
        true
    }

    fn stable_storage(&self) -> bool {
        true
    }

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A programmable ROM: readable at runtime, writable only through the
/// host-side load path (modelling factory/field programming of PROM).
#[derive(Debug, Clone)]
pub struct Rom {
    data: Vec<u8>,
}

impl Rom {
    /// Creates a zeroed ROM of `size` bytes.
    pub fn new(size: u32) -> Self {
        Rom {
            data: vec![0; size as usize],
        }
    }

    /// Direct host access to the contents.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

impl Device for Rom {
    fn name(&self) -> &'static str {
        "prom"
    }

    fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        let i = off as usize;
        let b = &self.data[i..i + 4];
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn write32(&mut self, off: u32, _value: u32) -> Result<(), BusError> {
        Err(BusError::ReadOnly { addr: off })
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        Ok(self.data[off as usize])
    }

    fn write8(&mut self, off: u32, _value: u8) -> Result<(), BusError> {
        Err(BusError::ReadOnly { addr: off })
    }

    fn host_load(&mut self, off: u32, bytes: &[u8]) -> bool {
        let start = off as usize;
        let end = start + bytes.len();
        if end > self.data.len() {
            return false;
        }
        self.data[start..end].copy_from_slice(bytes);
        true
    }

    fn stable_storage(&self) -> bool {
        true
    }

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_word_roundtrip() {
        let mut r = Ram::new("sram", 64);
        r.write32(8, 0xdead_beef).unwrap();
        assert_eq!(r.read32(8), Ok(0xdead_beef));
        assert_eq!(r.read8(8), Ok(0xef));
        assert_eq!(r.read8(11), Ok(0xde));
    }

    #[test]
    fn ram_byte_write() {
        let mut r = Ram::new("sram", 8);
        r.write8(5, 0x7f).unwrap();
        assert_eq!(r.read32(4), Ok(0x0000_7f00));
    }

    #[test]
    fn ram_fill_models_stale_memory() {
        let mut r = Ram::new("sram", 16);
        r.fill(0xcc);
        assert_eq!(r.read32(12), Ok(0xcccc_cccc));
    }

    #[test]
    fn rom_rejects_runtime_writes() {
        let mut r = Rom::new(16);
        assert_eq!(r.write32(0, 1), Err(BusError::ReadOnly { addr: 0 }));
        assert_eq!(r.write8(3, 1), Err(BusError::ReadOnly { addr: 3 }));
    }

    #[test]
    fn rom_host_load_visible_to_reads() {
        let mut r = Rom::new(16);
        assert!(r.host_load(4, &[1, 2, 3, 4]));
        assert_eq!(r.read32(4), Ok(0x0403_0201));
    }

    #[test]
    fn host_load_bounds_checked() {
        let mut r = Rom::new(8);
        assert!(!r.host_load(6, &[0; 4]));
        let mut m = Ram::new("sram", 8);
        assert!(!m.host_load(9, &[0]));
    }
}
