//! Volatile and read-only memory devices.
//!
//! Both [`Ram`] and [`Rom`] are backed by the sparse copy-on-write
//! [`PageStore`]: untouched memory reads as zero without being resident,
//! and [`Device::snapshot`] is O(resident pages), which is what makes
//! fleet forks cheap. The paging is invisible at the bus interface —
//! accesses, errors and `host_load` semantics are byte-identical to the
//! old flat `Vec<u8>` backing (see `tests/sparse_props.rs`).

use std::any::Any;

use crate::device::{BusError, Device};
use crate::pages::PageStore;

/// A plain RAM device (used for both on-chip SRAM and external DRAM).
#[derive(Debug, Clone)]
pub struct Ram {
    name: &'static str,
    store: PageStore,
}

impl Ram {
    /// Creates a zeroed RAM of `size` bytes (sparse: no pages resident).
    pub fn new(name: &'static str, size: u32) -> Self {
        Ram {
            name,
            store: PageStore::new(size),
        }
    }

    /// Creates a zeroed RAM with dense (fully materialized, deep-copy
    /// snapshot) backing — the reference mode for differential runs.
    pub fn new_dense(name: &'static str, size: u32) -> Self {
        Ram {
            name,
            store: PageStore::new_dense(size),
        }
    }

    /// Switches between sparse and dense backing without changing
    /// contents.
    pub fn set_dense(&mut self, dense: bool) {
        self.store.set_dense(dense);
    }

    /// Direct host access to the contents (diagnostics, assertions).
    /// Materializes the full image; O(size).
    pub fn bytes(&self) -> Vec<u8> {
        self.store.to_vec()
    }

    /// Number of materialized 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.store.resident_pages()
    }

    /// Fills the entire memory with a byte pattern (used to model the
    /// "memory not sanitized across reset" behaviour the Secure Loader
    /// defends against).
    pub fn fill(&mut self, pattern: u8) {
        self.store.fill(pattern);
    }
}

impl Device for Ram {
    fn name(&self) -> &'static str {
        self.name
    }

    fn size(&self) -> u32 {
        self.store.size()
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        if u64::from(off) + 4 > u64::from(self.store.size()) {
            return Err(BusError::Unmapped { addr: off });
        }
        Ok(self.store.read32(off))
    }

    fn write32(&mut self, off: u32, value: u32) -> Result<(), BusError> {
        if u64::from(off) + 4 > u64::from(self.store.size()) {
            return Err(BusError::Unmapped { addr: off });
        }
        self.store.write32(off, value);
        Ok(())
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        if off >= self.store.size() {
            return Err(BusError::Unmapped { addr: off });
        }
        Ok(self.store.read8(off))
    }

    fn write8(&mut self, off: u32, value: u8) -> Result<(), BusError> {
        if off >= self.store.size() {
            return Err(BusError::Unmapped { addr: off });
        }
        self.store.write8(off, value);
        Ok(())
    }

    fn host_load(&mut self, off: u32, bytes: &[u8]) -> bool {
        self.store.host_load(off, bytes)
    }

    fn stable_storage(&self) -> bool {
        true
    }

    fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
    }

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(Ram {
            name: self.name,
            store: self.store.snapshot(),
        }))
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A programmable ROM: readable at runtime, writable only through the
/// host-side load path (modelling factory/field programming of PROM).
#[derive(Debug, Clone)]
pub struct Rom {
    store: PageStore,
}

impl Rom {
    /// Creates a zeroed ROM of `size` bytes (sparse backing).
    pub fn new(size: u32) -> Self {
        Rom {
            store: PageStore::new(size),
        }
    }

    /// Creates a zeroed ROM with dense (reference) backing.
    pub fn new_dense(size: u32) -> Self {
        Rom {
            store: PageStore::new_dense(size),
        }
    }

    /// Switches between sparse and dense backing without changing
    /// contents.
    pub fn set_dense(&mut self, dense: bool) {
        self.store.set_dense(dense);
    }

    /// Direct host access to the contents. Materializes the full image;
    /// O(size).
    pub fn bytes(&self) -> Vec<u8> {
        self.store.to_vec()
    }

    /// Number of materialized 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.store.resident_pages()
    }
}

impl Device for Rom {
    fn name(&self) -> &'static str {
        "prom"
    }

    fn size(&self) -> u32 {
        self.store.size()
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        if u64::from(off) + 4 > u64::from(self.store.size()) {
            return Err(BusError::Unmapped { addr: off });
        }
        Ok(self.store.read32(off))
    }

    fn write32(&mut self, off: u32, _value: u32) -> Result<(), BusError> {
        Err(BusError::ReadOnly { addr: off })
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        if off >= self.store.size() {
            return Err(BusError::Unmapped { addr: off });
        }
        Ok(self.store.read8(off))
    }

    fn write8(&mut self, off: u32, _value: u8) -> Result<(), BusError> {
        Err(BusError::ReadOnly { addr: off })
    }

    fn host_load(&mut self, off: u32, bytes: &[u8]) -> bool {
        self.store.host_load(off, bytes)
    }

    fn stable_storage(&self) -> bool {
        true
    }

    fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
    }

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(Rom {
            store: self.store.snapshot(),
        }))
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_word_roundtrip() {
        let mut r = Ram::new("sram", 64);
        r.write32(8, 0xdead_beef).unwrap();
        assert_eq!(r.read32(8), Ok(0xdead_beef));
        assert_eq!(r.read8(8), Ok(0xef));
        assert_eq!(r.read8(11), Ok(0xde));
    }

    #[test]
    fn ram_byte_write() {
        let mut r = Ram::new("sram", 8);
        r.write8(5, 0x7f).unwrap();
        assert_eq!(r.read32(4), Ok(0x0000_7f00));
    }

    #[test]
    fn ram_fill_models_stale_memory() {
        let mut r = Ram::new("sram", 16);
        r.fill(0xcc);
        assert_eq!(r.read32(12), Ok(0xcccc_cccc));
    }

    #[test]
    fn rom_rejects_runtime_writes() {
        let mut r = Rom::new(16);
        assert_eq!(r.write32(0, 1), Err(BusError::ReadOnly { addr: 0 }));
        assert_eq!(r.write8(3, 1), Err(BusError::ReadOnly { addr: 3 }));
    }

    #[test]
    fn rom_host_load_visible_to_reads() {
        let mut r = Rom::new(16);
        assert!(r.host_load(4, &[1, 2, 3, 4]));
        assert_eq!(r.read32(4), Ok(0x0403_0201));
    }

    #[test]
    fn host_load_bounds_checked() {
        let mut r = Rom::new(8);
        assert!(!r.host_load(6, &[0; 4]));
        let mut m = Ram::new("sram", 8);
        assert!(!m.host_load(9, &[0]));
    }

    /// Regression: out-of-range offsets used to slice past the backing
    /// vector and panic; they must surface as `BusError::Unmapped`.
    #[test]
    fn ram_oob_accesses_error_not_panic() {
        let mut r = Ram::new("sram", 64);
        // Last valid word is at 60; 61..64 would read past the end.
        assert_eq!(r.read32(60), Ok(0));
        assert!(r.write32(60, 1).is_ok());
        for bad in [61, 62, 63, 64, 100, u32::MAX] {
            assert_eq!(r.read32(bad), Err(BusError::Unmapped { addr: bad }));
            assert_eq!(r.write32(bad, 1), Err(BusError::Unmapped { addr: bad }));
        }
        assert_eq!(r.read8(63), Ok(0));
        assert!(r.write8(63, 9).is_ok());
        assert_eq!(r.read8(64), Err(BusError::Unmapped { addr: 64 }));
        assert_eq!(r.write8(64, 1), Err(BusError::Unmapped { addr: 64 }));
    }

    #[test]
    fn rom_oob_accesses_error_not_panic() {
        let mut r = Rom::new(32);
        assert_eq!(r.read32(28), Ok(0));
        for bad in [29, 31, 32, u32::MAX - 3] {
            assert_eq!(r.read32(bad), Err(BusError::Unmapped { addr: bad }));
        }
        assert_eq!(r.read8(32), Err(BusError::Unmapped { addr: 32 }));
        // Writes stay ReadOnly even out of range (write is rejected
        // before the bounds question arises).
        assert_eq!(r.write32(64, 1), Err(BusError::ReadOnly { addr: 64 }));
    }

    #[test]
    fn fresh_ram_is_fully_sparse() {
        let mut r = Ram::new("dram", 1 << 20);
        assert_eq!(r.resident_pages(), 0);
        assert_eq!(Device::resident_bytes(&r), 0);
        assert_eq!(r.size(), 1 << 20);
        r.write32(0x8000, 1).unwrap();
        assert_eq!(r.resident_pages(), 1);
        assert_eq!(Device::resident_bytes(&r), 4096);
    }

    #[test]
    fn dense_ram_reports_full_residency() {
        let r = Ram::new_dense("sram", 64 * 1024);
        assert_eq!(Device::resident_bytes(&r), 64 * 1024);
        let mut s = Ram::new("sram", 64 * 1024);
        s.set_dense(true);
        assert_eq!(Device::resident_bytes(&s), 64 * 1024);
        s.set_dense(false);
        assert_eq!(Device::resident_bytes(&s), 0);
    }

    #[test]
    fn ram_snapshot_is_isolated_both_ways() {
        let mut parent = Ram::new("sram", 16 * 1024);
        parent.write32(0, 0x11).unwrap();
        let mut child = parent.snapshot().expect("ram snapshots");
        child.write32(0, 0x22).unwrap();
        child.write32(8192, 0x33).unwrap();
        assert_eq!(parent.read32(0), Ok(0x11));
        assert_eq!(parent.read32(8192), Ok(0));
        parent.write32(4, 0x44).unwrap();
        assert_eq!(child.read32(4), Ok(0));
        assert_eq!(child.read32(0), Ok(0x22));
    }
}
