//! Property tests on the physical bus.

use proptest::prelude::*;
use trustlite_mem::{Bus, Ram, Rom};

fn small_bus() -> Bus {
    let mut bus = Bus::new();
    bus.map(0x0000, Box::new(Rom::new(0x400)))
        .expect("rom maps");
    bus.map(0x1000, Box::new(Ram::new("a", 0x400)))
        .expect("ram a maps");
    bus.map(0x2000, Box::new(Ram::new("b", 0x400)))
        .expect("ram b maps");
    bus
}

proptest! {
    /// Any mix of accesses at arbitrary addresses returns a result and
    /// never panics.
    #[test]
    fn arbitrary_accesses_never_panic(
        ops in proptest::collection::vec((any::<u32>(), any::<u32>(), 0u8..4), 0..200)
    ) {
        let mut bus = small_bus();
        for (addr, value, kind) in ops {
            match kind {
                0 => {
                    let _ = bus.read32(addr);
                }
                1 => {
                    let _ = bus.write32(addr, value);
                }
                2 => {
                    let _ = bus.read8(addr);
                }
                _ => {
                    let _ = bus.write8(addr, value as u8);
                }
            }
        }
    }

    /// Read-after-write holds for every RAM word, and writes to one RAM
    /// never alias the other.
    #[test]
    fn ram_read_after_write(off in (0u32..0x100).prop_map(|o| o * 4), v in any::<u32>()) {
        let mut bus = small_bus();
        bus.write32(0x1000 + off, v).expect("in range");
        bus.write32(0x2000 + off, !v).expect("in range");
        prop_assert_eq!(bus.read32(0x1000 + off), Ok(v));
        prop_assert_eq!(bus.read32(0x2000 + off), Ok(!v));
    }

    /// Byte-wise writes compose into the little-endian word.
    #[test]
    fn byte_writes_compose(off in (0u32..0x100).prop_map(|o| o * 4), bytes in any::<[u8; 4]>()) {
        let mut bus = small_bus();
        for (i, b) in bytes.iter().enumerate() {
            bus.write8(0x1000 + off + i as u32, *b).expect("in range");
        }
        prop_assert_eq!(bus.read32(0x1000 + off), Ok(u32::from_le_bytes(bytes)));
    }

    /// Overlapping mappings are rejected regardless of order and size.
    #[test]
    fn overlap_always_rejected(base in 0u32..0x3000, size_sel in 1u32..4) {
        let mut bus = small_bus();
        let size = size_sel * 0x200;
        let result = bus.map(base, Box::new(Ram::new("x", size)));
        let end = base as u64 + size as u64;
        let overlaps = [(0x0000u64, 0x400u64), (0x1000, 0x400), (0x2000, 0x400)]
            .iter()
            .any(|&(b, s)| (base as u64) < b + s && b < end);
        prop_assert_eq!(result.is_err(), overlaps, "base={:#x} size={:#x}", base, size);
    }
}
