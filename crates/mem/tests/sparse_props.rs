//! Differential property tests: sparse COW [`Ram`] vs a dense reference.
//!
//! The reference model is the pre-sparse implementation shape — a flat
//! `Vec<u8>` with explicit bounds checks. Random interleavings of
//! store/load/byte/host_load/fill/snapshot(fork) operations must produce
//! identical reads, identical `BusError`s, and fork isolation in both
//! directions. This is the mem-layer half of the dense-vs-sparse
//! observational-identity argument; the fleet digest gates are the other
//! half.

use proptest::prelude::*;
use trustlite_mem::{BusError, Device, Ram, PAGE_SIZE};

const MEM_SIZE: u32 = 4 * PAGE_SIZE + 64; // ragged tail page on purpose

/// Dense flat-array reference with the same observable contract as Ram.
#[derive(Clone)]
struct DenseRef {
    data: Vec<u8>,
}

impl DenseRef {
    fn new(size: u32) -> Self {
        DenseRef {
            data: vec![0; size as usize],
        }
    }

    fn read32(&self, off: u32) -> Result<u32, BusError> {
        let i = off as usize;
        if i + 4 > self.data.len() {
            return Err(BusError::Unmapped { addr: off });
        }
        let b = &self.data[i..i + 4];
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn write32(&mut self, off: u32, value: u32) -> Result<(), BusError> {
        let i = off as usize;
        if i + 4 > self.data.len() {
            return Err(BusError::Unmapped { addr: off });
        }
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn read8(&self, off: u32) -> Result<u8, BusError> {
        self.data
            .get(off as usize)
            .copied()
            .ok_or(BusError::Unmapped { addr: off })
    }

    fn write8(&mut self, off: u32, value: u8) -> Result<(), BusError> {
        match self.data.get_mut(off as usize) {
            Some(b) => {
                *b = value;
                Ok(())
            }
            None => Err(BusError::Unmapped { addr: off }),
        }
    }

    fn host_load(&mut self, off: u32, bytes: &[u8]) -> bool {
        let start = off as usize;
        let Some(end) = start.checked_add(bytes.len()) else {
            return false;
        };
        if end > self.data.len() {
            return false;
        }
        self.data[start..end].copy_from_slice(bytes);
        true
    }

    fn fill(&mut self, pattern: u8) {
        self.data.fill(pattern);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Write32 { off: u32, value: u32 },
    Write8 { off: u32, value: u8 },
    Read32 { off: u32 },
    Read8 { off: u32 },
    HostLoad { off: u32, len: u16, seed: u8 },
    Fill { pattern: u8 },
    Fork,
}

/// Offsets biased toward page boundaries and the ragged tail so the
/// straddle/boundary paths actually get exercised; some offsets land
/// past the end to compare the error paths.
fn off_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        0..MEM_SIZE + 16,
        (0u32..5).prop_map(|p| p * PAGE_SIZE),
        (0u32..5).prop_map(|p| (p * PAGE_SIZE).wrapping_sub(2)),
        Just(MEM_SIZE - 4),
        Just(MEM_SIZE - 3),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (off_strategy(), any::<u32>()).prop_map(|(off, value)| Op::Write32 { off, value }),
        (off_strategy(), any::<u8>()).prop_map(|(off, value)| Op::Write8 { off, value }),
        off_strategy().prop_map(|off| Op::Read32 { off }),
        off_strategy().prop_map(|off| Op::Read8 { off }),
        (off_strategy(), 0u16..2 * PAGE_SIZE as u16, any::<u8>())
            .prop_map(|(off, len, seed)| Op::HostLoad { off, len, seed }),
        // Zero pattern is the interesting fill (drops pages).
        prop_oneof![Just(0u8), any::<u8>()].prop_map(|pattern| Op::Fill { pattern }),
        Just(Op::Fork),
    ]
}

/// Pseudo-random but deterministic image bytes; seed 0 yields all-zero
/// images to exercise the sparse zero-chunk skip.
fn image(seed: u8, len: u16) -> Vec<u8> {
    if seed == 0 {
        return vec![0; len as usize];
    }
    (0..len)
        .map(|i| {
            (u16::from(seed)
                .wrapping_mul(31)
                .wrapping_add(i.wrapping_mul(7))
                & 0xff) as u8
        })
        .collect()
}

fn apply(ram: &mut Ram, dense: &mut DenseRef, op: &Op) {
    match *op {
        Op::Write32 { off, value } => {
            assert_eq!(
                ram.write32(off, value),
                dense.write32(off, value),
                "w32 {off:#x}"
            );
        }
        Op::Write8 { off, value } => {
            assert_eq!(
                ram.write8(off, value),
                dense.write8(off, value),
                "w8 {off:#x}"
            );
        }
        Op::Read32 { off } => {
            assert_eq!(ram.read32(off), dense.read32(off), "r32 {off:#x}");
        }
        Op::Read8 { off } => {
            assert_eq!(ram.read8(off), dense.read8(off), "r8 {off:#x}");
        }
        Op::HostLoad { off, len, seed } => {
            let img = image(seed, len);
            assert_eq!(
                Device::host_load(ram, off, &img),
                dense.host_load(off, &img),
                "host_load {off:#x}+{len}"
            );
        }
        Op::Fill { pattern } => {
            ram.fill(pattern);
            dense.fill(pattern);
        }
        Op::Fork => {} // handled by the driver
    }
}

fn check_equal(ram: &Ram, dense: &DenseRef, tag: &str) {
    assert_eq!(ram.bytes(), dense.data, "{tag}: full contents diverged");
}

proptest! {
    /// Sparse Ram behaves byte-identically to the dense reference under
    /// random op soups, including across forks: each Fork op snapshots
    /// both models, runs the remaining ops on the child pair, and then
    /// verifies the parent pair was untouched (fork isolation in both
    /// directions, COW pages unshared correctly).
    #[test]
    fn sparse_ram_matches_dense_reference(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut ram = Ram::new("sram", MEM_SIZE);
        let mut dense = DenseRef::new(MEM_SIZE);
        let mut lineage: Vec<(Ram, DenseRef)> = Vec::new();

        for op in &ops {
            if matches!(op, Op::Fork) {
                // Ram::clone has the same Arc-sharing COW semantics as
                // Device::snapshot (which the pointwise test exercises
                // through the trait object).
                let forked = ram.clone();
                lineage.push((std::mem::replace(&mut ram, forked), dense.clone()));
            } else {
                apply(&mut ram, &mut dense, op);
            }
        }

        check_equal(&ram, &dense, "leaf");
        // Every ancestor must still match its own reference: child
        // writes never leak into parents through shared pages.
        for (i, (ancestor, reference)) in lineage.iter().enumerate() {
            check_equal(ancestor, reference, &format!("ancestor {i}"));
        }
    }
}

proptest! {
    /// Writes into a fork never appear in the parent and vice versa, for
    /// arbitrary write positions around page boundaries.
    #[test]
    fn fork_isolation_pointwise(
        parent_off in 0..MEM_SIZE - 4,
        child_off in 0..MEM_SIZE - 4,
        v1 in 1u32..u32::MAX,
        v2 in 1u32..u32::MAX,
    ) {
        let mut parent = Ram::new("sram", MEM_SIZE);
        parent.write32(parent_off & !3, v1).unwrap();
        let mut child = parent.snapshot().unwrap();
        child.write32(child_off & !3, v2).unwrap();
        assert_eq!(parent.read32(child_off & !3).unwrap(),
                   if child_off & !3 == parent_off & !3 { v1 } else { 0 });
        parent.write32(parent_off & !3, v1 ^ 0xffff).unwrap();
        assert_eq!(child.read32(child_off & !3), Ok(v2));
    }
}
