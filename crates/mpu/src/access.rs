//! Access kinds, permissions and fault records.

use core::fmt;

/// The kind of memory access being validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read (load).
    Read,
    /// Data write (store).
    Write,
    /// Instruction fetch.
    Execute,
}

impl AccessKind {
    /// All kinds, in permission-bit order.
    pub const ALL: [AccessKind; 3] = [AccessKind::Read, AccessKind::Write, AccessKind::Execute];

    /// Encoding used in the MMIO fault-status register.
    pub fn code(self) -> u32 {
        match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::Execute => 2,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Execute => write!(f, "execute"),
        }
    }
}

/// An r/w/x permission set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms {
    bits: u8,
}

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms { bits: 0 };
    /// Read-only.
    pub const R: Perms = Perms { bits: 1 };
    /// Write-only (rare, but expressible).
    pub const W: Perms = Perms { bits: 2 };
    /// Execute-only.
    pub const X: Perms = Perms { bits: 4 };
    /// Read + write.
    pub const RW: Perms = Perms { bits: 3 };
    /// Read + execute (typical code region for its owner).
    pub const RX: Perms = Perms { bits: 5 };
    /// Read + write + execute.
    pub const RWX: Perms = Perms { bits: 7 };

    /// Builds from raw bits (low three bits: r, w, x).
    pub fn from_bits(bits: u8) -> Perms {
        Perms { bits: bits & 7 }
    }

    /// Raw bit encoding.
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Returns true if the permission set allows `kind`.
    pub fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.bits & 1 != 0,
            AccessKind::Write => self.bits & 2 != 0,
            AccessKind::Execute => self.bits & 4 != 0,
        }
    }

    /// Union of two permission sets.
    pub fn union(self, other: Perms) -> Perms {
        Perms {
            bits: self.bits | other.bits,
        }
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.allows(AccessKind::Read) {
                "r"
            } else {
                "-"
            },
            if self.allows(AccessKind::Write) {
                "w"
            } else {
                "-"
            },
            if self.allows(AccessKind::Execute) {
                "x"
            } else {
                "-"
            },
        )
    }
}

/// A memory-protection fault raised by an MPU check.
///
/// Per Section 3.2.2, the fault invalidates the executing instruction and
/// the exception engine diverts to the designated handler, providing the
/// violating instruction address and the requested access as arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpuFault {
    /// Address of the instruction performing the access (the subject).
    pub ip: u32,
    /// The violating data/fetch address (the object).
    pub addr: u32,
    /// The kind of access that was attempted.
    pub kind: AccessKind,
}

impl fmt::Display for MpuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory protection fault: {} of {:#010x} from ip {:#010x}",
            self.kind, self.addr, self.ip
        )
    }
}

impl std::error::Error for MpuFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_allow_matrix() {
        assert!(Perms::R.allows(AccessKind::Read));
        assert!(!Perms::R.allows(AccessKind::Write));
        assert!(!Perms::R.allows(AccessKind::Execute));
        assert!(Perms::RX.allows(AccessKind::Execute));
        assert!(Perms::RW.allows(AccessKind::Write));
        for k in AccessKind::ALL {
            assert!(!Perms::NONE.allows(k));
            assert!(Perms::RWX.allows(k));
        }
    }

    #[test]
    fn perms_bits_roundtrip() {
        for bits in 0..8 {
            assert_eq!(Perms::from_bits(bits).bits(), bits);
        }
        assert_eq!(Perms::from_bits(0xff).bits(), 7, "high bits masked");
    }

    #[test]
    fn perms_union() {
        assert_eq!(Perms::R.union(Perms::W), Perms::RW);
        assert_eq!(Perms::RX.union(Perms::RW), Perms::RWX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::NONE.to_string(), "---");
        let f = MpuFault {
            ip: 0x100,
            addr: 0x2000,
            kind: AccessKind::Write,
        };
        assert!(f.to_string().contains("write"));
        assert!(f.to_string().contains("0x00002000"));
    }
}
