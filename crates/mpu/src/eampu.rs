//! The Execution-Aware Memory Protection Unit.

use crate::access::{AccessKind, MpuFault, Perms};

/// The subject selector of a protection region.
///
/// A region's rule either applies to *any* executing instruction pointer
/// (conventional MPU behaviour, used e.g. for public PROM code) or only
/// when `curr_IP` lies inside another region — the *linked code region* of
/// Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subject {
    /// Any instruction pointer may perform the access.
    Any,
    /// Only instructions executing inside region `index` may access.
    Region(u8),
}

impl Subject {
    /// MMIO encoding (0xff = any, otherwise the region index).
    pub fn code(self) -> u8 {
        match self {
            Subject::Any => 0xff,
            Subject::Region(i) => i,
        }
    }

    /// Decodes the MMIO encoding.
    pub fn from_code(code: u8) -> Subject {
        if code == 0xff {
            Subject::Any
        } else {
            Subject::Region(code)
        }
    }
}

/// One protection-region rule slot.
///
/// `start..end` is the object range (half-open, byte-granular). `perms`
/// are granted to instruction pointers matched by `subject`. A disabled
/// slot never matches; a locked slot rejects further reprogramming until
/// platform reset (used for hardwired "hardware trustlet" regions,
/// Section 3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSlot {
    /// First byte of the object region.
    pub start: u32,
    /// One past the last byte of the object region.
    pub end: u32,
    /// Permissions granted.
    pub perms: Perms,
    /// Who may use this rule.
    pub subject: Subject,
    /// Whether the slot participates in checks.
    pub enabled: bool,
    /// Whether the slot rejects reprogramming.
    pub locked: bool,
}

impl RuleSlot {
    /// A disabled, unlocked, empty slot (the post-reset state).
    pub const EMPTY: RuleSlot = RuleSlot {
        start: 0,
        end: 0,
        perms: Perms::NONE,
        subject: Subject::Any,
        enabled: false,
        locked: false,
    };

    /// Returns true if `addr` lies in the object range.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }
}

/// An error returned when programming the EA-MPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// Slot index out of range for this instantiation.
    BadSlot(usize),
    /// The slot is locked until platform reset.
    Locked(usize),
}

impl core::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProgramError::BadSlot(i) => write!(f, "MPU slot {i} out of range"),
            ProgramError::Locked(i) => write!(f, "MPU slot {i} is locked"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Bitmask over the first 256 rule slots: bit `i` set means slot `i` is
/// enabled and its object range contains the current instruction pointer.
///
/// Two instruction pointers with equal masks are indistinguishable to
/// every rule's subject test ([`Subject::Region`] indices are `u8`, so
/// slots past 255 can never be subjects), which is what lets grant-cache
/// entries be shared across an IP range.
type SubjectMask = [u64; 4];

fn mask_bit(mask: &SubjectMask, idx: u8) -> bool {
    mask[(idx >> 6) as usize] & (1 << (idx & 63)) != 0
}

/// One micro-TLB entry: for any access with the subject mask identified
/// by `epoch`, kind `kind` and address in `[lo, lo + len)`, the
/// first-match scan resolves to `slot` (`None` = denial). Windows are
/// derived so that every slot's eligibility and containment verdict is
/// constant across the window, making the cached outcome exact, not
/// approximate.
///
/// Entries reference the subject mask by *epoch* rather than storing the
/// 256-bit mask itself: the cache assigns each distinct mask an epoch
/// (see `GrantCache::masks`) and keeps the current one in
/// `GrantCache::epoch`, so a probe compares one word instead of four. An
/// entry whose epoch is not current simply misses — but becomes live
/// again when execution returns to its mask. Epochs are 64-bit and never
/// reassigned, so an evicted mask's entries can never be resurrected by
/// a different mask.
#[derive(Debug, Clone, Copy)]
struct GrantEntry {
    lo: u32,
    /// Window length. `addr` hits iff `addr - lo < len` (wrapping), which
    /// also keeps `u32::MAX` out of every well-formed window.
    len: u32,
    epoch: u64,
    kind: AccessKind,
    slot: Option<u16>,
}

/// Cached subject mask, valid while the IP stays inside `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
struct SubjectWindow {
    lo: u32,
    hi: u32,
    mask: SubjectMask,
    valid: bool,
}

const GRANT_CACHE_WAYS: usize = 16;

/// Number of subject masks the cache can keep live at once.
const SUBJECT_EPOCHS: usize = 8;

/// Number of subject windows remembered to skip recomputation when
/// execution crosses back into a previously visited code region.
const SUBJECT_WINDOWS: usize = 8;

/// The grant micro-TLB. Flash-cleared on any slot mutation so cached
/// verdicts can never outlive the rules they were derived from.
#[derive(Debug, Clone)]
struct GrantCache {
    enabled: bool,
    entries: [Option<GrantEntry>; GRANT_CACHE_WAYS],
    /// Round-robin victim pointer.
    next: usize,
    /// Per-access-kind way of the most recent hit or fill: fetches, loads
    /// and stores each tend to revisit one window, so probing this way
    /// first usually skips the scan.
    last_hit: [usize; 3],
    subject: SubjectWindow,
    /// Identifier of the current subject mask; entries from other epochs
    /// never hit.
    epoch: u64,
    /// Recently seen masks and their epochs. Returning to a known mask
    /// (the OS/trustlet call-return ping-pong) restores its epoch, so
    /// that mask's entries become live again instead of the whole cache
    /// flushing on every domain crossing. Epoch 0 marks an empty row and
    /// is never assigned to a mask.
    masks: [(SubjectMask, u64); SUBJECT_EPOCHS],
    /// Round-robin victim pointer for `masks`.
    mask_next: usize,
    /// Recently computed subject windows and their epochs: crossing back
    /// into a known window (call/return, scheduler round-robin) restores
    /// it without re-scanning the slots.
    windows: [Option<(SubjectWindow, u64)>; SUBJECT_WINDOWS],
    /// Round-robin victim pointer for `windows`.
    window_next: usize,
    /// Last epoch handed out; monotonic, so an evicted mask's entries can
    /// never be revalidated by a different mask.
    epoch_next: u64,
}

impl GrantCache {
    fn new() -> Self {
        GrantCache {
            enabled: true,
            entries: [None; GRANT_CACHE_WAYS],
            next: 0,
            last_hit: [0; 3],
            subject: SubjectWindow {
                lo: 0,
                hi: 0,
                mask: [0; 4],
                valid: false,
            },
            epoch: 0,
            masks: [([0; 4], 0); SUBJECT_EPOCHS],
            mask_next: 0,
            windows: [None; SUBJECT_WINDOWS],
            window_next: 0,
            epoch_next: 0,
        }
    }

    fn clear(&mut self) {
        self.entries = [None; GRANT_CACHE_WAYS];
        self.next = 0;
        self.subject.valid = false;
        // Retire every outstanding epoch: memos held outside the MPU
        // (the predecode fetch-grant memo) validate by epoch compare
        // alone, so a rule change must make every old epoch unmatchable.
        self.masks = [([0; 4], 0); SUBJECT_EPOCHS];
        self.mask_next = 0;
        self.windows = [None; SUBJECT_WINDOWS];
        self.window_next = 0;
        self.epoch = 0;
    }
}

/// The Execution-Aware MPU.
///
/// The number of rule slots is fixed at construction, mirroring hardware
/// instantiation choices (the paper discusses 12–32 region registers and
/// reports timing closure up to 32). Checks are a pure function of the
/// slot registers; the paper notes the range comparators evaluate in
/// parallel, so a check adds **zero** cycles to the memory access path
/// (Section 5.3) — the simulator charges no time for it.
///
/// # Grant cache
///
/// [`EaMpu::check`] consults a small micro-TLB before the linear slot
/// scan. Entries record the first-match outcome (granting slot index or
/// denial) together with the exact `(subject-IP, address)` window over
/// which that outcome provably holds, so hits reproduce the scan
/// bit-identically: the same slot counter is bumped, the same fault is
/// latched. The cache is flash-invalidated by [`EaMpu::set_rule`],
/// [`EaMpu::lock_slot`], [`EaMpu::reset`] and the MMIO write path, and
/// can be switched off with [`EaMpu::set_grant_cache`] for differential
/// testing.
#[derive(Debug, Clone)]
pub struct EaMpu {
    slots: Vec<RuleSlot>,
    /// Performance counter: number of accepted register writes (the §5.3
    /// loader-overhead metric).
    write_count: u64,
    /// Performance counter: accesses validated through [`EaMpu::check`].
    check_count: u64,
    /// Performance counter: accesses denied by [`EaMpu::check`].
    deny_count: u64,
    /// Per-slot grant counters: `slot_hits[i]` counts checks granted via
    /// slot `i` (first-match attribution).
    slot_hits: Vec<u64>,
    /// Per-slot denial counters: `slot_denials[i]` counts denied checks
    /// whose *subject* was executing from slot `i` (attributed via the
    /// faulting IP's code region, since a denial by definition has no
    /// granting object slot). Denials from IPs outside any executable
    /// region count only in `deny_count`.
    slot_denials: Vec<u64>,
    /// Latched record of the most recent fault, for handler inspection.
    last_fault: Option<MpuFault>,
    cache: GrantCache,
    /// Deferred grant-counter updates from the superblock replay fast
    /// path ([`EaMpu::replay_hit`]): `pending_hits` checks granted via
    /// `pending_slot` that have not yet been folded into `check_count` /
    /// `slot_hits`. The block loop flushes on every exit, so the
    /// counters are exact whenever the host can observe them (the MMIO
    /// window exposes neither counter).
    pending_slot: u16,
    pending_hits: u64,
}

impl EaMpu {
    /// Creates an EA-MPU with `slots` empty rule slots.
    pub fn new(slots: usize) -> Self {
        EaMpu {
            slots: vec![RuleSlot::EMPTY; slots],
            write_count: 0,
            check_count: 0,
            deny_count: 0,
            slot_hits: vec![0; slots],
            slot_denials: vec![0; slots],
            last_fault: None,
            cache: GrantCache::new(),
            pending_slot: 0,
            pending_hits: 0,
        }
    }

    /// Enables or disables the grant micro-TLB (enabled by default).
    /// Disabling clears it, so re-enabling starts cold.
    pub fn set_grant_cache(&mut self, on: bool) {
        self.cache.enabled = on;
        self.cache.clear();
    }

    /// Whether the grant micro-TLB is enabled.
    pub fn grant_cache_enabled(&self) -> bool {
        self.cache.enabled
    }

    /// Number of rule slots in this instantiation.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Read-only view of a slot.
    pub fn slot(&self, index: usize) -> Option<&RuleSlot> {
        self.slots.get(index)
    }

    /// Read-only view of all slots.
    pub fn slots(&self) -> &[RuleSlot] {
        &self.slots
    }

    /// Programs a whole slot. Counts as three register writes (start, end,
    /// flags), matching the hardware programming interface.
    pub fn set_rule(&mut self, index: usize, rule: RuleSlot) -> Result<(), ProgramError> {
        let slot = self
            .slots
            .get_mut(index)
            .ok_or(ProgramError::BadSlot(index))?;
        if slot.locked {
            return Err(ProgramError::Locked(index));
        }
        *slot = rule;
        self.write_count += 3;
        self.cache.clear();
        Ok(())
    }

    /// Internal MMIO write path: replaces a slot and counts one register
    /// write. The MMIO layer has already handled lock semantics.
    pub(crate) fn mmio_set_slot_raw(&mut self, index: usize, rule: RuleSlot) {
        self.slots[index] = rule;
        self.write_count += 1;
        self.cache.clear();
    }

    /// Locks a slot until reset.
    pub fn lock_slot(&mut self, index: usize) -> Result<(), ProgramError> {
        let slot = self
            .slots
            .get_mut(index)
            .ok_or(ProgramError::BadSlot(index))?;
        slot.locked = true;
        self.cache.clear();
        Ok(())
    }

    /// Clears all slots and counters (platform reset; Secure Loader step 1
    /// of Figure 5). Locked slots are released — locks hold only until
    /// reset.
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = RuleSlot::EMPTY;
        }
        self.write_count = 0;
        self.check_count = 0;
        self.deny_count = 0;
        for h in &mut self.slot_hits {
            *h = 0;
        }
        for d in &mut self.slot_denials {
            *d = 0;
        }
        self.last_fault = None;
        self.cache.clear();
        self.pending_hits = 0;
    }

    /// The register-write performance counter.
    pub fn write_count(&self) -> u64 {
        self.write_count
    }

    /// Number of accesses validated through [`EaMpu::check`].
    pub fn check_count(&self) -> u64 {
        self.check_count
    }

    /// Number of accesses denied by [`EaMpu::check`].
    pub fn deny_count(&self) -> u64 {
        self.deny_count
    }

    /// Per-slot grant counters (`slot_hits()[i]` = checks granted via
    /// slot `i`, first enabled match winning).
    pub fn slot_hits(&self) -> &[u64] {
        &self.slot_hits
    }

    /// Per-slot denial counters (`slot_denials()[i]` = denied checks
    /// issued by code executing from slot `i`; see the field docs for the
    /// attribution rule).
    pub fn slot_denials(&self) -> &[u64] {
        &self.slot_denials
    }

    /// The most recent latched fault, if any.
    pub fn last_fault(&self) -> Option<MpuFault> {
        self.last_fault
    }

    /// Clears the latched fault record.
    pub fn clear_fault(&mut self) {
        self.last_fault = None;
    }

    /// Replays an Execute check whose grant was memoised under `epoch`
    /// for the exact fetch address: if the subject mask of `subject_ip`
    /// still carries that epoch, the counters are bumped exactly as the
    /// full check would and `true` is returned; otherwise nothing happens
    /// and the caller must run [`EaMpu::check`].
    #[inline]
    pub fn exec_check_cached(&mut self, subject_ip: u32, epoch: u64, slot: u16) -> bool {
        if !self.cache.enabled {
            return false;
        }
        self.refresh_subject(subject_ip);
        if epoch == 0 || epoch != self.cache.epoch {
            return false;
        }
        self.check_count += 1;
        self.slot_hits[slot as usize] += 1;
        true
    }

    /// Block-level prevalidation for the superblock replay fast path:
    /// refreshes the subject window for `subject_ip` (the subject of the
    /// block's first fetch) and, if that window also covers every
    /// in-block subject — the fetch addresses `[start, start + 4*len)` —
    /// returns the current (nonzero) mask epoch. A memo carrying this
    /// epoch may then be replayed with [`EaMpu::replay_hit`] alone: the
    /// per-op subject refresh is provably a no-op for the rest of the
    /// pass, and any rule mutation retires the epoch (the caller
    /// re-checks [`EaMpu::cache_epoch`] after ops that touch memory).
    /// Returns 0 when the cache is off or the window does not cover the
    /// block.
    pub fn block_epoch(&mut self, subject_ip: u32, start: u32, len: u32) -> u64 {
        if !self.cache.enabled {
            return 0;
        }
        self.refresh_subject(subject_ip);
        let w = &self.cache.subject;
        let end = start.wrapping_add(4 * len);
        if w.valid && w.lo <= start && start < end && end <= w.hi {
            self.cache.epoch
        } else {
            0
        }
    }

    /// The current subject-mask epoch (0 when the cache is disabled or
    /// freshly invalidated — i.e. "no memo can replay").
    #[inline(always)]
    pub fn cache_epoch(&self) -> u64 {
        if self.cache.enabled {
            self.cache.epoch
        } else {
            0
        }
    }

    /// Records one replayed grant via `slot` without touching the
    /// counters: consecutive hits on the same slot coalesce into one
    /// deferred update, folded in by [`EaMpu::flush_replays`]. Only
    /// valid after [`EaMpu::block_epoch`] vouched for the memo's epoch.
    #[inline(always)]
    pub fn replay_hit(&mut self, slot: u16) {
        if slot == self.pending_slot {
            self.pending_hits += 1;
        } else {
            self.flush_replays();
            self.pending_slot = slot;
            self.pending_hits = 1;
        }
    }

    /// Folds `n` replayed grants via `slot` into the counters at once —
    /// the bulk form of [`EaMpu::replay_hit`], used by the block loop's
    /// clean-pass fetch path (a whole resident pass whose fetch memos
    /// were validated as sharing one hot slot counts its replays in a
    /// register).
    pub fn add_replay_hits(&mut self, slot: u16, n: u64) {
        if n != 0 {
            self.check_count += n;
            self.slot_hits[slot as usize] += n;
        }
    }

    /// Folds deferred [`EaMpu::replay_hit`] updates into `check_count`
    /// and `slot_hits`. The superblock loop calls this on every exit, so
    /// host-visible counters never lag.
    pub fn flush_replays(&mut self) {
        if self.pending_hits != 0 {
            self.check_count += self.pending_hits;
            self.slot_hits[self.pending_slot as usize] += self.pending_hits;
            self.pending_hits = 0;
        }
    }

    /// The `(epoch, slot)` memo for an Execute access at `addr` that the
    /// grant cache can currently vouch for (i.e. the check just ran and
    /// granted). `None` when the cache is off or holds no such entry.
    pub fn exec_memo(&self, addr: u32) -> Option<(u64, u16)> {
        self.grant_window(addr, AccessKind::Execute)
            .map(|(epoch, slot, _, _)| (epoch, slot))
    }

    /// The `(epoch, slot, window lo, window len)` of the grant-cache entry
    /// currently vouching for `(addr, kind)` — i.e. a check just ran and
    /// granted via `slot`, and the same outcome provably holds for every
    /// address in `[lo, lo + len)` under the subject mask named by
    /// `epoch`. The superblock engine stores these beside micro-ops so a
    /// whole straight-line run replays one micro-TLB probe per *block*
    /// instead of one scan per access. `None` when the cache is off or
    /// holds no granting entry (denials are never memoised).
    pub fn grant_window(&self, addr: u32, kind: AccessKind) -> Option<(u64, u16, u32, u32)> {
        if !self.cache.enabled {
            return None;
        }
        let epoch = self.cache.epoch;
        self.cache
            .entries
            .iter()
            .flatten()
            .find(|e| e.epoch == epoch && e.kind == kind && addr.wrapping_sub(e.lo) < e.len)
            .and_then(|e| e.slot.map(|s| (epoch, s, e.lo, e.len)))
    }

    /// Replays a check whose grant was memoised under `epoch` for the
    /// window `[lo, lo + len)`: if the subject mask of `subject_ip` still
    /// carries that epoch and `addr` lies in the window, the counters are
    /// bumped exactly as the full check would and `true` is returned;
    /// otherwise nothing happens and the caller must run [`EaMpu::check`].
    /// This is the data-access analogue of [`EaMpu::exec_check_cached`]:
    /// the window qualifier makes it exact for varying addresses.
    #[inline(always)]
    pub fn check_cached_window(
        &mut self,
        subject_ip: u32,
        epoch: u64,
        slot: u16,
        lo: u32,
        len: u32,
        addr: u32,
    ) -> bool {
        if !self.cache.enabled {
            return false;
        }
        self.refresh_subject(subject_ip);
        if epoch == 0 || epoch != self.cache.epoch || addr.wrapping_sub(lo) >= len {
            return false;
        }
        self.check_count += 1;
        self.slot_hits[slot as usize] += 1;
        true
    }

    fn subject_matches(&self, subject: Subject, ip: u32) -> bool {
        match subject {
            Subject::Any => true,
            Subject::Region(idx) => self
                .slots
                .get(idx as usize)
                .map(|r| r.enabled && r.contains(ip))
                .unwrap_or(false),
        }
    }

    /// The first enabled slot granting `(ip, addr, kind)`, if any.
    fn matching_slot(&self, ip: u32, addr: u32, kind: AccessKind) -> Option<usize> {
        self.slots.iter().position(|s| {
            s.enabled
                && s.contains(addr)
                && s.perms.allows(kind)
                && self.subject_matches(s.subject, ip)
        })
    }

    /// Pure query: would `(ip, addr, kind)` be allowed?
    ///
    /// Default deny: the access is allowed only if some enabled slot covers
    /// `addr`, grants `kind`, and its subject matches `ip`.
    pub fn allows(&self, ip: u32, addr: u32, kind: AccessKind) -> bool {
        self.matching_slot(ip, addr, kind).is_some()
    }

    /// Computes the subject mask for `ip` together with the half-open IP
    /// window over which it stays constant: crossing any enabled slot's
    /// start or end boundary can flip a bit, so the window is clamped to
    /// the nearest boundary on each side.
    fn compute_subject_window(&self, ip: u32) -> SubjectWindow {
        let mut mask: SubjectMask = [0; 4];
        let (mut lo, mut hi) = (0u32, u32::MAX);
        for (i, s) in self.slots.iter().take(256).enumerate() {
            if !s.enabled {
                continue;
            }
            if s.contains(ip) {
                mask[i >> 6] |= 1 << (i & 63);
                lo = lo.max(s.start);
                hi = hi.min(s.end);
            } else if s.end <= ip {
                lo = lo.max(s.end);
            } else {
                // !contains and end > ip implies start > ip.
                hi = hi.min(s.start);
            }
        }
        SubjectWindow {
            lo,
            hi,
            mask,
            valid: true,
        }
    }

    /// Ensures the cached subject window covers `ip`, recomputing it (and
    /// bumping the mask epoch if the mask actually changed) when the IP
    /// has crossed a window boundary. The in-window test runs 1–2 times
    /// per instruction, so it is forced inline; the crossing path stays
    /// outlined.
    #[inline(always)]
    fn refresh_subject(&mut self, ip: u32) {
        let w = &self.cache.subject;
        if w.valid && ip >= w.lo && ip < w.hi {
            return;
        }
        self.refresh_subject_crossed(ip);
    }

    /// The window-crossing half of [`EaMpu::refresh_subject`].
    fn refresh_subject_crossed(&mut self, ip: u32) {
        if let Some(&(win, e)) = self
            .cache
            .windows
            .iter()
            .flatten()
            .find(|(w, _)| ip >= w.lo && ip < w.hi)
        {
            self.cache.subject = win;
            self.cache.epoch = e;
            return;
        }
        let nw = self.compute_subject_window(ip);
        if !(self.cache.subject.valid && nw.mask == self.cache.subject.mask) {
            if let Some(&(_, e)) = self
                .cache
                .masks
                .iter()
                .find(|&&(m, e)| e != 0 && m == nw.mask)
            {
                self.cache.epoch = e;
            } else {
                self.cache.epoch_next += 1;
                self.cache.epoch = self.cache.epoch_next;
                self.cache.masks[self.cache.mask_next] = (nw.mask, self.cache.epoch);
                self.cache.mask_next = (self.cache.mask_next + 1) % SUBJECT_EPOCHS;
            }
        }
        self.cache.windows[self.cache.window_next] = Some((nw, self.cache.epoch));
        self.cache.window_next = (self.cache.window_next + 1) % SUBJECT_WINDOWS;
        self.cache.subject = nw;
    }

    /// Runs the first-match scan for `(mask, addr, kind)` and derives the
    /// exact address window over which its outcome holds: every eligible
    /// slot (enabled, kind granted, subject matched — all independent of
    /// `addr`) that does *not* contain `addr` pushes the window off its
    /// range, and the winning slot clamps the window onto its own.
    fn compute_grant_entry(&self, addr: u32, kind: AccessKind) -> GrantEntry {
        let mask = self.cache.subject.mask;
        let epoch = self.cache.epoch;
        let (mut lo, mut hi) = (0u32, u32::MAX);
        for (i, s) in self.slots.iter().enumerate() {
            if !s.enabled || !s.perms.allows(kind) {
                continue;
            }
            let subject_ok = match s.subject {
                Subject::Any => true,
                Subject::Region(r) => mask_bit(&mask, r),
            };
            if !subject_ok {
                continue;
            }
            if s.contains(addr) {
                let lo = lo.max(s.start);
                return GrantEntry {
                    lo,
                    len: hi.min(s.end) - lo,
                    epoch,
                    kind,
                    slot: Some(i as u16),
                };
            } else if s.end <= addr {
                lo = lo.max(s.end);
            } else {
                hi = hi.min(s.start);
            }
        }
        GrantEntry {
            lo,
            len: hi - lo,
            epoch,
            kind,
            slot: None,
        }
    }

    /// Validates an access, latching and returning a fault on denial.
    /// Updates the check/denial/per-slot performance counters.
    #[inline(always)]
    pub fn check(&mut self, ip: u32, addr: u32, kind: AccessKind) -> Result<(), MpuFault> {
        self.check_count += 1;
        let matched = if self.cache.enabled {
            self.refresh_subject(ip);
            let epoch = self.cache.epoch;
            let matches = |e: &GrantEntry| {
                e.epoch == epoch && e.kind == kind && addr.wrapping_sub(e.lo) < e.len
            };
            // Probe the way this kind last hit before scanning: each kind
            // (fetch/load/store) usually streams within one window.
            let way = self.cache.last_hit[kind as usize];
            let hit = match self.cache.entries[way] {
                Some(ref e) if matches(e) => Some((way, *e)),
                _ => self
                    .cache
                    .entries
                    .iter()
                    .enumerate()
                    .find_map(|(i, e)| e.filter(|e| matches(e)).map(|e| (i, e))),
            };
            match hit {
                Some((i, e)) => {
                    self.cache.last_hit[kind as usize] = i;
                    e.slot.map(usize::from)
                }
                None => {
                    let e = self.compute_grant_entry(addr, kind);
                    // Windows are exclusive at the top, so addr == u32::MAX
                    // can never be covered; fall through uncached.
                    if addr != u32::MAX {
                        self.cache.entries[self.cache.next] = Some(e);
                        self.cache.last_hit[kind as usize] = self.cache.next;
                        self.cache.next = (self.cache.next + 1) % GRANT_CACHE_WAYS;
                    }
                    e.slot.map(usize::from)
                }
            }
        } else {
            self.matching_slot(ip, addr, kind)
        };
        match matched {
            Some(slot) => {
                self.slot_hits[slot] += 1;
                Ok(())
            }
            None => {
                self.deny_count += 1;
                // Attribute the denial to the *subject's* code slot: a
                // pure function of the slot registers and `ip`, so the
                // cached and uncached check paths agree by construction.
                if let Some(slot) = self.find_exec_region(ip) {
                    self.slot_denials[slot] += 1;
                }
                let fault = MpuFault { ip, addr, kind };
                self.last_fault = Some(fault);
                Err(fault)
            }
        }
    }

    /// Returns the index of the first enabled slot whose object range
    /// contains `addr` and which is an *executable* region (used by
    /// diagnostics and local attestation to find a task's code region).
    pub fn find_exec_region(&self, addr: u32) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.enabled && s.contains(addr) && s.perms.allows(AccessKind::Execute))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tasks A and B with private data plus a shared OS-readable page,
    /// in the spirit of Figure 3.
    fn figure3_like() -> EaMpu {
        let mut m = EaMpu::new(8);
        // Slot 0: A's code, executable by anyone within its entry handled
        // elsewhere; here: rx for A itself (subject = region 0).
        m.set_rule(
            0,
            RuleSlot {
                start: 0x0000,
                end: 0x1000,
                perms: Perms::RX,
                subject: Subject::Region(0),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        // Slot 1: B's code.
        m.set_rule(
            1,
            RuleSlot {
                start: 0x1000,
                end: 0x2000,
                perms: Perms::RX,
                subject: Subject::Region(1),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        // Slot 2: A's data, rw for code in region 0 only.
        m.set_rule(
            2,
            RuleSlot {
                start: 0x8000,
                end: 0x9000,
                perms: Perms::RW,
                subject: Subject::Region(0),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        // Slot 3: B's data, rw for code in region 1 only.
        m.set_rule(
            3,
            RuleSlot {
                start: 0x9000,
                end: 0xa000,
                perms: Perms::RW,
                subject: Subject::Region(1),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        // Slot 4: public ROM constants, readable by anyone.
        m.set_rule(
            4,
            RuleSlot {
                start: 0xf000,
                end: 0xf100,
                perms: Perms::R,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn execution_awareness_separates_tasks() {
        let mut m = figure3_like();
        let ip_a = 0x0100;
        let ip_b = 0x1100;
        // A reads/writes its own data.
        assert!(m.check(ip_a, 0x8004, AccessKind::Read).is_ok());
        assert!(m.check(ip_a, 0x8004, AccessKind::Write).is_ok());
        // A cannot touch B's data; B cannot touch A's.
        assert!(m.check(ip_a, 0x9004, AccessKind::Read).is_err());
        assert!(m.check(ip_b, 0x8004, AccessKind::Write).is_err());
        // Both read the public region.
        assert!(m.check(ip_a, 0xf000, AccessKind::Read).is_ok());
        assert!(m.check(ip_b, 0xf0fc, AccessKind::Read).is_ok());
        // Nobody executes from data.
        assert!(m.check(ip_a, 0x8004, AccessKind::Execute).is_err());
    }

    #[test]
    fn default_deny() {
        let mut m = EaMpu::new(4);
        for kind in AccessKind::ALL {
            assert!(m.check(0, 0x1234, kind).is_err());
        }
    }

    #[test]
    fn fetch_permission_requires_exec_bit() {
        let mut m = figure3_like();
        // A fetches its own code.
        assert!(m.check(0x0100, 0x0104, AccessKind::Execute).is_ok());
        // B may not fetch from A's code region (subject mismatch).
        assert!(m.check(0x1100, 0x0104, AccessKind::Execute).is_err());
    }

    #[test]
    fn half_open_ranges() {
        let m = figure3_like();
        assert!(
            m.allows(0x0ffc, 0x8000, AccessKind::Read),
            "ip at last code word"
        );
        assert!(
            !m.allows(0x1000, 0x8000, AccessKind::Read),
            "ip one past code end is B"
        );
        assert!(m.allows(0x0100, 0x8fff, AccessKind::Read), "last data byte");
        assert!(
            !m.allows(0x0100, 0x9000, AccessKind::Read),
            "one past data end"
        );
    }

    #[test]
    fn fault_latched_and_cleared() {
        let mut m = figure3_like();
        assert!(m.last_fault().is_none());
        let _ = m.check(0x1100, 0x8000, AccessKind::Write);
        let f = m.last_fault().expect("fault latched");
        assert_eq!(f.ip, 0x1100);
        assert_eq!(f.addr, 0x8000);
        assert_eq!(f.kind, AccessKind::Write);
        m.clear_fault();
        assert!(m.last_fault().is_none());
    }

    #[test]
    fn write_counter_tracks_three_per_rule() {
        let m = figure3_like();
        assert_eq!(m.write_count(), 15, "5 rules x 3 writes");
    }

    #[test]
    fn check_counters_track_grants_and_denials() {
        let mut m = figure3_like();
        let ip_a = 0x0100;
        let ip_b = 0x1100;
        assert!(m.check(ip_a, 0x8004, AccessKind::Write).is_ok()); // slot 2
        assert!(m.check(ip_a, 0x8008, AccessKind::Read).is_ok()); // slot 2
        assert!(m.check(ip_b, 0x9004, AccessKind::Write).is_ok()); // slot 3
        assert!(m.check(ip_a, 0x9004, AccessKind::Read).is_err()); // denied
        assert!(m.check(ip_b, 0x8004, AccessKind::Write).is_err()); // denied
        assert_eq!(m.check_count(), 5);
        assert_eq!(m.deny_count(), 2);
        assert_eq!(m.slot_hits()[2], 2);
        assert_eq!(m.slot_hits()[3], 1);
        assert_eq!(m.slot_hits()[0], 0);
        // Denials are attributed to the offending *subject's* code slot.
        assert_eq!(m.slot_denials()[0], 1, "A's stray read");
        assert_eq!(m.slot_denials()[1], 1, "B's stray write");
        assert_eq!(m.slot_denials()[2], 0);
    }

    #[test]
    fn denials_from_unmapped_ips_stay_unattributed() {
        let mut m = figure3_like();
        assert!(m.check(0x4000, 0x8004, AccessKind::Write).is_err());
        assert_eq!(m.deny_count(), 1);
        assert!(m.slot_denials().iter().all(|&d| d == 0));
    }

    #[test]
    fn allows_is_pure_and_counts_nothing() {
        let m = figure3_like();
        assert!(m.allows(0x0100, 0x8004, AccessKind::Read));
        assert!(!m.allows(0x0100, 0x9004, AccessKind::Read));
        assert_eq!(m.check_count(), 0);
        assert_eq!(m.deny_count(), 0);
    }

    #[test]
    fn locked_slot_rejects_reprogramming() {
        let mut m = figure3_like();
        m.lock_slot(2).unwrap();
        let err = m.set_rule(2, RuleSlot::EMPTY).unwrap_err();
        assert_eq!(err, ProgramError::Locked(2));
        // Other slots still programmable.
        assert!(m.set_rule(5, RuleSlot::EMPTY).is_ok());
    }

    #[test]
    fn reset_clears_everything_including_locks() {
        let mut m = figure3_like();
        m.lock_slot(0).unwrap();
        let _ = m.check(0, 0x9999, AccessKind::Read);
        m.reset();
        assert_eq!(m.write_count(), 0);
        assert_eq!(m.check_count(), 0);
        assert_eq!(m.deny_count(), 0);
        assert!(m.slot_hits().iter().all(|&h| h == 0));
        assert!(m.slot_denials().iter().all(|&d| d == 0));
        assert!(m.last_fault().is_none());
        assert!(
            m.set_rule(0, RuleSlot::EMPTY).is_ok(),
            "lock released by reset"
        );
        assert!(!m.allows(0x0100, 0x8004, AccessKind::Read), "rules gone");
    }

    #[test]
    fn bad_slot_index() {
        let mut m = EaMpu::new(2);
        assert_eq!(
            m.set_rule(2, RuleSlot::EMPTY).unwrap_err(),
            ProgramError::BadSlot(2)
        );
        assert_eq!(m.lock_slot(9).unwrap_err(), ProgramError::BadSlot(9));
    }

    #[test]
    fn disabled_subject_region_never_matches() {
        let mut m = EaMpu::new(4);
        // Object rule pointing at a disabled subject region.
        m.set_rule(
            0,
            RuleSlot {
                start: 0x100,
                end: 0x200,
                perms: Perms::RX,
                subject: Subject::Region(0),
                enabled: false,
                locked: false,
            },
        )
        .unwrap();
        m.set_rule(
            1,
            RuleSlot {
                start: 0x8000,
                end: 0x9000,
                perms: Perms::RW,
                subject: Subject::Region(0),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        assert!(!m.allows(0x100, 0x8000, AccessKind::Read));
    }

    #[test]
    fn dangling_subject_region_never_matches() {
        let mut m = EaMpu::new(2);
        m.set_rule(
            0,
            RuleSlot {
                start: 0x8000,
                end: 0x9000,
                perms: Perms::RW,
                subject: Subject::Region(7), // out of range
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        assert!(!m.allows(0x100, 0x8000, AccessKind::Read));
    }

    #[test]
    fn overlapping_rules_union_permissions() {
        let mut m = EaMpu::new(4);
        m.set_rule(
            0,
            RuleSlot {
                start: 0x0,
                end: 0x100,
                perms: Perms::R,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        m.set_rule(
            1,
            RuleSlot {
                start: 0x80,
                end: 0x180,
                perms: Perms::W,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        assert!(m.allows(0, 0x90, AccessKind::Read));
        assert!(m.allows(0, 0x90, AccessKind::Write));
        assert!(!m.allows(0, 0x40, AccessKind::Write));
        assert!(!m.allows(0, 0x140, AccessKind::Read));
    }

    #[test]
    fn find_exec_region() {
        let m = figure3_like();
        assert_eq!(m.find_exec_region(0x0500), Some(0));
        assert_eq!(m.find_exec_region(0x1500), Some(1));
        assert_eq!(
            m.find_exec_region(0x8500),
            None,
            "data region is not executable"
        );
    }

    #[test]
    fn grant_cache_matches_uncached_counters() {
        let mut cached = figure3_like();
        let mut plain = figure3_like();
        plain.set_grant_cache(false);
        let probes = [
            (0x0100, 0x8004, AccessKind::Write),
            (0x0100, 0x8004, AccessKind::Write), // repeat: cache hit path
            (0x0100, 0x9004, AccessKind::Read),  // denied
            (0x0100, 0x9004, AccessKind::Read),  // denied again, from cache
            (0x1100, 0x9ffc, AccessKind::Write),
            (0x1100, 0xf000, AccessKind::Read),
            (0x0ffc, 0x8000, AccessKind::Read), // ip at code-region edge
            (0x1000, 0x8000, AccessKind::Read), // ip one past: now B, denied
        ];
        for &(ip, addr, kind) in &probes {
            assert_eq!(
                cached.check(ip, addr, kind),
                plain.check(ip, addr, kind),
                "verdict diverged at {ip:#x}/{addr:#x}/{kind:?}"
            );
        }
        assert_eq!(cached.check_count(), plain.check_count());
        assert_eq!(cached.deny_count(), plain.deny_count());
        assert_eq!(cached.slot_hits(), plain.slot_hits());
        assert_eq!(cached.slot_denials(), plain.slot_denials());
        assert_eq!(cached.last_fault(), plain.last_fault());
    }

    #[test]
    fn grant_cache_invalidated_by_rule_write() {
        let mut m = figure3_like();
        assert!(m.check(0x0100, 0x8004, AccessKind::Write).is_ok());
        // Revoke A's data rule; the cached grant must not survive.
        m.set_rule(2, RuleSlot::EMPTY).unwrap();
        assert!(m.check(0x0100, 0x8004, AccessKind::Write).is_err());
        // And re-granting must undo the cached denial.
        m.set_rule(
            2,
            RuleSlot {
                start: 0x8000,
                end: 0x9000,
                perms: Perms::RW,
                subject: Subject::Region(0),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        assert!(m.check(0x0100, 0x8004, AccessKind::Write).is_ok());
    }

    #[test]
    fn grant_cache_respects_subject_boundaries() {
        let mut m = figure3_like();
        // Warm the cache with A's grant, then probe from B's code at the
        // same object address: the subject mask differs, so the entry
        // must not apply.
        assert!(m.check(0x0100, 0x8004, AccessKind::Write).is_ok());
        assert!(m.check(0x1100, 0x8004, AccessKind::Write).is_err());
        // IPs outside any code region share the empty mask.
        assert!(m.check(0x4000, 0x8004, AccessKind::Write).is_err());
        assert!(
            m.check(0x5000, 0xf004, AccessKind::Read).is_ok(),
            "Any-subject rule"
        );
    }

    #[test]
    fn subject_code_roundtrip() {
        assert_eq!(Subject::from_code(Subject::Any.code()), Subject::Any);
        assert_eq!(
            Subject::from_code(Subject::Region(7).code()),
            Subject::Region(7)
        );
    }
}
