//! The Execution-Aware Memory Protection Unit.

use crate::access::{AccessKind, MpuFault, Perms};

/// The subject selector of a protection region.
///
/// A region's rule either applies to *any* executing instruction pointer
/// (conventional MPU behaviour, used e.g. for public PROM code) or only
/// when `curr_IP` lies inside another region — the *linked code region* of
/// Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subject {
    /// Any instruction pointer may perform the access.
    Any,
    /// Only instructions executing inside region `index` may access.
    Region(u8),
}

impl Subject {
    /// MMIO encoding (0xff = any, otherwise the region index).
    pub fn code(self) -> u8 {
        match self {
            Subject::Any => 0xff,
            Subject::Region(i) => i,
        }
    }

    /// Decodes the MMIO encoding.
    pub fn from_code(code: u8) -> Subject {
        if code == 0xff {
            Subject::Any
        } else {
            Subject::Region(code)
        }
    }
}

/// One protection-region rule slot.
///
/// `start..end` is the object range (half-open, byte-granular). `perms`
/// are granted to instruction pointers matched by `subject`. A disabled
/// slot never matches; a locked slot rejects further reprogramming until
/// platform reset (used for hardwired "hardware trustlet" regions,
/// Section 3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSlot {
    /// First byte of the object region.
    pub start: u32,
    /// One past the last byte of the object region.
    pub end: u32,
    /// Permissions granted.
    pub perms: Perms,
    /// Who may use this rule.
    pub subject: Subject,
    /// Whether the slot participates in checks.
    pub enabled: bool,
    /// Whether the slot rejects reprogramming.
    pub locked: bool,
}

impl RuleSlot {
    /// A disabled, unlocked, empty slot (the post-reset state).
    pub const EMPTY: RuleSlot = RuleSlot {
        start: 0,
        end: 0,
        perms: Perms::NONE,
        subject: Subject::Any,
        enabled: false,
        locked: false,
    };

    /// Returns true if `addr` lies in the object range.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }
}

/// An error returned when programming the EA-MPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// Slot index out of range for this instantiation.
    BadSlot(usize),
    /// The slot is locked until platform reset.
    Locked(usize),
}

impl core::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProgramError::BadSlot(i) => write!(f, "MPU slot {i} out of range"),
            ProgramError::Locked(i) => write!(f, "MPU slot {i} is locked"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// The Execution-Aware MPU.
///
/// The number of rule slots is fixed at construction, mirroring hardware
/// instantiation choices (the paper discusses 12–32 region registers and
/// reports timing closure up to 32). Checks are a pure function of the
/// slot registers; the paper notes the range comparators evaluate in
/// parallel, so a check adds **zero** cycles to the memory access path
/// (Section 5.3) — the simulator charges no time for it.
#[derive(Debug, Clone)]
pub struct EaMpu {
    slots: Vec<RuleSlot>,
    /// Performance counter: number of accepted register writes (the §5.3
    /// loader-overhead metric).
    write_count: u64,
    /// Performance counter: accesses validated through [`EaMpu::check`].
    check_count: u64,
    /// Performance counter: accesses denied by [`EaMpu::check`].
    deny_count: u64,
    /// Per-slot grant counters: `slot_hits[i]` counts checks granted via
    /// slot `i` (first-match attribution).
    slot_hits: Vec<u64>,
    /// Latched record of the most recent fault, for handler inspection.
    last_fault: Option<MpuFault>,
}

impl EaMpu {
    /// Creates an EA-MPU with `slots` empty rule slots.
    pub fn new(slots: usize) -> Self {
        EaMpu {
            slots: vec![RuleSlot::EMPTY; slots],
            write_count: 0,
            check_count: 0,
            deny_count: 0,
            slot_hits: vec![0; slots],
            last_fault: None,
        }
    }

    /// Number of rule slots in this instantiation.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Read-only view of a slot.
    pub fn slot(&self, index: usize) -> Option<&RuleSlot> {
        self.slots.get(index)
    }

    /// Read-only view of all slots.
    pub fn slots(&self) -> &[RuleSlot] {
        &self.slots
    }

    /// Programs a whole slot. Counts as three register writes (start, end,
    /// flags), matching the hardware programming interface.
    pub fn set_rule(&mut self, index: usize, rule: RuleSlot) -> Result<(), ProgramError> {
        let slot = self
            .slots
            .get_mut(index)
            .ok_or(ProgramError::BadSlot(index))?;
        if slot.locked {
            return Err(ProgramError::Locked(index));
        }
        *slot = rule;
        self.write_count += 3;
        Ok(())
    }

    /// Internal MMIO write path: replaces a slot and counts one register
    /// write. The MMIO layer has already handled lock semantics.
    pub(crate) fn mmio_set_slot_raw(&mut self, index: usize, rule: RuleSlot) {
        self.slots[index] = rule;
        self.write_count += 1;
    }

    /// Locks a slot until reset.
    pub fn lock_slot(&mut self, index: usize) -> Result<(), ProgramError> {
        let slot = self
            .slots
            .get_mut(index)
            .ok_or(ProgramError::BadSlot(index))?;
        slot.locked = true;
        Ok(())
    }

    /// Clears all slots and counters (platform reset; Secure Loader step 1
    /// of Figure 5). Locked slots are released — locks hold only until
    /// reset.
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = RuleSlot::EMPTY;
        }
        self.write_count = 0;
        self.check_count = 0;
        self.deny_count = 0;
        for h in &mut self.slot_hits {
            *h = 0;
        }
        self.last_fault = None;
    }

    /// The register-write performance counter.
    pub fn write_count(&self) -> u64 {
        self.write_count
    }

    /// Number of accesses validated through [`EaMpu::check`].
    pub fn check_count(&self) -> u64 {
        self.check_count
    }

    /// Number of accesses denied by [`EaMpu::check`].
    pub fn deny_count(&self) -> u64 {
        self.deny_count
    }

    /// Per-slot grant counters (`slot_hits()[i]` = checks granted via
    /// slot `i`, first enabled match winning).
    pub fn slot_hits(&self) -> &[u64] {
        &self.slot_hits
    }

    /// The most recent latched fault, if any.
    pub fn last_fault(&self) -> Option<MpuFault> {
        self.last_fault
    }

    /// Clears the latched fault record.
    pub fn clear_fault(&mut self) {
        self.last_fault = None;
    }

    fn subject_matches(&self, subject: Subject, ip: u32) -> bool {
        match subject {
            Subject::Any => true,
            Subject::Region(idx) => self
                .slots
                .get(idx as usize)
                .map(|r| r.enabled && r.contains(ip))
                .unwrap_or(false),
        }
    }

    /// The first enabled slot granting `(ip, addr, kind)`, if any.
    fn matching_slot(&self, ip: u32, addr: u32, kind: AccessKind) -> Option<usize> {
        self.slots.iter().position(|s| {
            s.enabled
                && s.contains(addr)
                && s.perms.allows(kind)
                && self.subject_matches(s.subject, ip)
        })
    }

    /// Pure query: would `(ip, addr, kind)` be allowed?
    ///
    /// Default deny: the access is allowed only if some enabled slot covers
    /// `addr`, grants `kind`, and its subject matches `ip`.
    pub fn allows(&self, ip: u32, addr: u32, kind: AccessKind) -> bool {
        self.matching_slot(ip, addr, kind).is_some()
    }

    /// Validates an access, latching and returning a fault on denial.
    /// Updates the check/denial/per-slot performance counters.
    pub fn check(&mut self, ip: u32, addr: u32, kind: AccessKind) -> Result<(), MpuFault> {
        self.check_count += 1;
        match self.matching_slot(ip, addr, kind) {
            Some(slot) => {
                self.slot_hits[slot] += 1;
                Ok(())
            }
            None => {
                self.deny_count += 1;
                let fault = MpuFault { ip, addr, kind };
                self.last_fault = Some(fault);
                Err(fault)
            }
        }
    }

    /// Returns the index of the first enabled slot whose object range
    /// contains `addr` and which is an *executable* region (used by
    /// diagnostics and local attestation to find a task's code region).
    pub fn find_exec_region(&self, addr: u32) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.enabled && s.contains(addr) && s.perms.allows(AccessKind::Execute))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tasks A and B with private data plus a shared OS-readable page,
    /// in the spirit of Figure 3.
    fn figure3_like() -> EaMpu {
        let mut m = EaMpu::new(8);
        // Slot 0: A's code, executable by anyone within its entry handled
        // elsewhere; here: rx for A itself (subject = region 0).
        m.set_rule(
            0,
            RuleSlot {
                start: 0x0000,
                end: 0x1000,
                perms: Perms::RX,
                subject: Subject::Region(0),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        // Slot 1: B's code.
        m.set_rule(
            1,
            RuleSlot {
                start: 0x1000,
                end: 0x2000,
                perms: Perms::RX,
                subject: Subject::Region(1),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        // Slot 2: A's data, rw for code in region 0 only.
        m.set_rule(
            2,
            RuleSlot {
                start: 0x8000,
                end: 0x9000,
                perms: Perms::RW,
                subject: Subject::Region(0),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        // Slot 3: B's data, rw for code in region 1 only.
        m.set_rule(
            3,
            RuleSlot {
                start: 0x9000,
                end: 0xa000,
                perms: Perms::RW,
                subject: Subject::Region(1),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        // Slot 4: public ROM constants, readable by anyone.
        m.set_rule(
            4,
            RuleSlot {
                start: 0xf000,
                end: 0xf100,
                perms: Perms::R,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn execution_awareness_separates_tasks() {
        let mut m = figure3_like();
        let ip_a = 0x0100;
        let ip_b = 0x1100;
        // A reads/writes its own data.
        assert!(m.check(ip_a, 0x8004, AccessKind::Read).is_ok());
        assert!(m.check(ip_a, 0x8004, AccessKind::Write).is_ok());
        // A cannot touch B's data; B cannot touch A's.
        assert!(m.check(ip_a, 0x9004, AccessKind::Read).is_err());
        assert!(m.check(ip_b, 0x8004, AccessKind::Write).is_err());
        // Both read the public region.
        assert!(m.check(ip_a, 0xf000, AccessKind::Read).is_ok());
        assert!(m.check(ip_b, 0xf0fc, AccessKind::Read).is_ok());
        // Nobody executes from data.
        assert!(m.check(ip_a, 0x8004, AccessKind::Execute).is_err());
    }

    #[test]
    fn default_deny() {
        let mut m = EaMpu::new(4);
        for kind in AccessKind::ALL {
            assert!(m.check(0, 0x1234, kind).is_err());
        }
    }

    #[test]
    fn fetch_permission_requires_exec_bit() {
        let mut m = figure3_like();
        // A fetches its own code.
        assert!(m.check(0x0100, 0x0104, AccessKind::Execute).is_ok());
        // B may not fetch from A's code region (subject mismatch).
        assert!(m.check(0x1100, 0x0104, AccessKind::Execute).is_err());
    }

    #[test]
    fn half_open_ranges() {
        let m = figure3_like();
        assert!(
            m.allows(0x0ffc, 0x8000, AccessKind::Read),
            "ip at last code word"
        );
        assert!(
            !m.allows(0x1000, 0x8000, AccessKind::Read),
            "ip one past code end is B"
        );
        assert!(m.allows(0x0100, 0x8fff, AccessKind::Read), "last data byte");
        assert!(
            !m.allows(0x0100, 0x9000, AccessKind::Read),
            "one past data end"
        );
    }

    #[test]
    fn fault_latched_and_cleared() {
        let mut m = figure3_like();
        assert!(m.last_fault().is_none());
        let _ = m.check(0x1100, 0x8000, AccessKind::Write);
        let f = m.last_fault().expect("fault latched");
        assert_eq!(f.ip, 0x1100);
        assert_eq!(f.addr, 0x8000);
        assert_eq!(f.kind, AccessKind::Write);
        m.clear_fault();
        assert!(m.last_fault().is_none());
    }

    #[test]
    fn write_counter_tracks_three_per_rule() {
        let m = figure3_like();
        assert_eq!(m.write_count(), 15, "5 rules x 3 writes");
    }

    #[test]
    fn check_counters_track_grants_and_denials() {
        let mut m = figure3_like();
        let ip_a = 0x0100;
        let ip_b = 0x1100;
        assert!(m.check(ip_a, 0x8004, AccessKind::Write).is_ok()); // slot 2
        assert!(m.check(ip_a, 0x8008, AccessKind::Read).is_ok()); // slot 2
        assert!(m.check(ip_b, 0x9004, AccessKind::Write).is_ok()); // slot 3
        assert!(m.check(ip_a, 0x9004, AccessKind::Read).is_err()); // denied
        assert!(m.check(ip_b, 0x8004, AccessKind::Write).is_err()); // denied
        assert_eq!(m.check_count(), 5);
        assert_eq!(m.deny_count(), 2);
        assert_eq!(m.slot_hits()[2], 2);
        assert_eq!(m.slot_hits()[3], 1);
        assert_eq!(m.slot_hits()[0], 0);
    }

    #[test]
    fn allows_is_pure_and_counts_nothing() {
        let m = figure3_like();
        assert!(m.allows(0x0100, 0x8004, AccessKind::Read));
        assert!(!m.allows(0x0100, 0x9004, AccessKind::Read));
        assert_eq!(m.check_count(), 0);
        assert_eq!(m.deny_count(), 0);
    }

    #[test]
    fn locked_slot_rejects_reprogramming() {
        let mut m = figure3_like();
        m.lock_slot(2).unwrap();
        let err = m.set_rule(2, RuleSlot::EMPTY).unwrap_err();
        assert_eq!(err, ProgramError::Locked(2));
        // Other slots still programmable.
        assert!(m.set_rule(5, RuleSlot::EMPTY).is_ok());
    }

    #[test]
    fn reset_clears_everything_including_locks() {
        let mut m = figure3_like();
        m.lock_slot(0).unwrap();
        let _ = m.check(0, 0x9999, AccessKind::Read);
        m.reset();
        assert_eq!(m.write_count(), 0);
        assert_eq!(m.check_count(), 0);
        assert_eq!(m.deny_count(), 0);
        assert!(m.slot_hits().iter().all(|&h| h == 0));
        assert!(m.last_fault().is_none());
        assert!(
            m.set_rule(0, RuleSlot::EMPTY).is_ok(),
            "lock released by reset"
        );
        assert!(!m.allows(0x0100, 0x8004, AccessKind::Read), "rules gone");
    }

    #[test]
    fn bad_slot_index() {
        let mut m = EaMpu::new(2);
        assert_eq!(
            m.set_rule(2, RuleSlot::EMPTY).unwrap_err(),
            ProgramError::BadSlot(2)
        );
        assert_eq!(m.lock_slot(9).unwrap_err(), ProgramError::BadSlot(9));
    }

    #[test]
    fn disabled_subject_region_never_matches() {
        let mut m = EaMpu::new(4);
        // Object rule pointing at a disabled subject region.
        m.set_rule(
            0,
            RuleSlot {
                start: 0x100,
                end: 0x200,
                perms: Perms::RX,
                subject: Subject::Region(0),
                enabled: false,
                locked: false,
            },
        )
        .unwrap();
        m.set_rule(
            1,
            RuleSlot {
                start: 0x8000,
                end: 0x9000,
                perms: Perms::RW,
                subject: Subject::Region(0),
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        assert!(!m.allows(0x100, 0x8000, AccessKind::Read));
    }

    #[test]
    fn dangling_subject_region_never_matches() {
        let mut m = EaMpu::new(2);
        m.set_rule(
            0,
            RuleSlot {
                start: 0x8000,
                end: 0x9000,
                perms: Perms::RW,
                subject: Subject::Region(7), // out of range
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        assert!(!m.allows(0x100, 0x8000, AccessKind::Read));
    }

    #[test]
    fn overlapping_rules_union_permissions() {
        let mut m = EaMpu::new(4);
        m.set_rule(
            0,
            RuleSlot {
                start: 0x0,
                end: 0x100,
                perms: Perms::R,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        m.set_rule(
            1,
            RuleSlot {
                start: 0x80,
                end: 0x180,
                perms: Perms::W,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        assert!(m.allows(0, 0x90, AccessKind::Read));
        assert!(m.allows(0, 0x90, AccessKind::Write));
        assert!(!m.allows(0, 0x40, AccessKind::Write));
        assert!(!m.allows(0, 0x140, AccessKind::Read));
    }

    #[test]
    fn find_exec_region() {
        let m = figure3_like();
        assert_eq!(m.find_exec_region(0x0500), Some(0));
        assert_eq!(m.find_exec_region(0x1500), Some(1));
        assert_eq!(
            m.find_exec_region(0x8500),
            None,
            "data region is not executable"
        );
    }

    #[test]
    fn subject_code_roundtrip() {
        assert_eq!(Subject::from_code(Subject::Any.code()), Subject::Any);
        assert_eq!(
            Subject::from_code(Subject::Region(7).code()),
            Subject::Region(7)
        );
    }
}
