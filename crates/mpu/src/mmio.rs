//! The EA-MPU's memory-mapped register interface.
//!
//! Figure 3 of the paper lists the MPU's own "flags" and "regions"
//! registers as just another MMIO object in the access-control matrix:
//! the Secure Loader programs the MPU through these registers and then
//! *locks it by dropping write permission on this very window*. The
//! system-bus wiring in `trustlite-cpu` routes the window here after the
//! (self-referential) MPU check has passed.
//!
//! Register map (offsets within the MPU MMIO window):
//!
//! ```text
//! slot i (i < slot_count), stride 12:
//!   i*12 + 0   START  (rw)
//!   i*12 + 4   END    (rw)
//!   i*12 + 8   FLAGS  (rw)  [2:0] perms r/w/x  [3] enabled
//!                           [4] locked (one-way)  [15:8] subject
//! control block:
//!   0xF00  SLOT_COUNT   (ro)
//!   0xF04  WRITE_COUNT  (ro)
//!   0xF08  FAULT_IP     (ro)
//!   0xF0C  FAULT_ADDR   (ro)
//!   0xF10  FAULT_KIND   (ro; 0xffff_ffff when no fault is latched)
//!   0xF14  FAULT_CLEAR  (wo)
//! ```
//!
//! Writes to a locked slot are silently dropped, as in hardware; bad
//! offsets report an access error.

use crate::access::{AccessKind, Perms};
use crate::eampu::{EaMpu, RuleSlot, Subject};

/// Stride of one slot's register group in bytes.
pub const SLOT_STRIDE: u32 = 12;
/// Offset of the control block.
pub const CTRL_BASE: u32 = 0xF00;
/// Control register: number of slots.
pub const REG_SLOT_COUNT: u32 = CTRL_BASE;
/// Control register: accepted write counter.
pub const REG_WRITE_COUNT: u32 = CTRL_BASE + 4;
/// Control register: latched fault instruction pointer.
pub const REG_FAULT_IP: u32 = CTRL_BASE + 8;
/// Control register: latched fault address.
pub const REG_FAULT_ADDR: u32 = CTRL_BASE + 12;
/// Control register: latched fault kind.
pub const REG_FAULT_KIND: u32 = CTRL_BASE + 16;
/// Control register: write-to-clear fault latch.
pub const REG_FAULT_CLEAR: u32 = CTRL_BASE + 20;

/// Value read from `REG_FAULT_KIND` when no fault is latched.
pub const NO_FAULT: u32 = 0xffff_ffff;

/// An invalid MMIO access to the MPU register bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpuMmioError {
    /// Offending offset within the window.
    pub off: u32,
}

/// Returns the MMIO offset of a slot's START register.
pub fn slot_start_off(index: usize) -> u32 {
    index as u32 * SLOT_STRIDE
}

/// Returns the MMIO offset of a slot's END register.
pub fn slot_end_off(index: usize) -> u32 {
    index as u32 * SLOT_STRIDE + 4
}

/// Returns the MMIO offset of a slot's FLAGS register.
pub fn slot_flags_off(index: usize) -> u32 {
    index as u32 * SLOT_STRIDE + 8
}

/// Encodes a slot's FLAGS register value.
pub fn encode_flags(rule: &RuleSlot) -> u32 {
    (rule.perms.bits() as u32)
        | (rule.enabled as u32) << 3
        | (rule.locked as u32) << 4
        | (rule.subject.code() as u32) << 8
}

/// Decodes a FLAGS register value into its fields.
pub fn decode_flags(v: u32) -> (Perms, bool, bool, Subject) {
    (
        Perms::from_bits((v & 7) as u8),
        v & (1 << 3) != 0,
        v & (1 << 4) != 0,
        Subject::from_code((v >> 8) as u8),
    )
}

impl EaMpu {
    fn slot_reg(&self, off: u32) -> Option<(usize, u32)> {
        if off >= CTRL_BASE {
            return None;
        }
        let index = (off / SLOT_STRIDE) as usize;
        let reg = off % SLOT_STRIDE;
        if index >= self.slot_count() {
            return None;
        }
        Some((index, reg))
    }

    /// Reads an MPU register over MMIO.
    pub fn mmio_read(&self, off: u32) -> Result<u32, MpuMmioError> {
        if let Some((index, reg)) = self.slot_reg(off) {
            let slot = self.slot(index).expect("index validated by slot_reg");
            return Ok(match reg {
                0 => slot.start,
                4 => slot.end,
                8 => encode_flags(slot),
                _ => return Err(MpuMmioError { off }),
            });
        }
        match off {
            REG_SLOT_COUNT => Ok(self.slot_count() as u32),
            REG_WRITE_COUNT => Ok(self.write_count() as u32),
            REG_FAULT_IP => Ok(self.last_fault().map(|f| f.ip).unwrap_or(NO_FAULT)),
            REG_FAULT_ADDR => Ok(self.last_fault().map(|f| f.addr).unwrap_or(NO_FAULT)),
            REG_FAULT_KIND => Ok(self.last_fault().map(|f| f.kind.code()).unwrap_or(NO_FAULT)),
            _ => Err(MpuMmioError { off }),
        }
    }

    /// Writes an MPU register over MMIO.
    ///
    /// Writes to a locked slot are dropped silently (hardware behaviour);
    /// they do not advance the write counter.
    pub fn mmio_write(&mut self, off: u32, value: u32) -> Result<(), MpuMmioError> {
        if let Some((index, reg)) = self.slot_reg(off) {
            let locked = self.slot(index).expect("validated").locked;
            if locked {
                return Ok(());
            }
            let mut rule = *self.slot(index).expect("validated");
            match reg {
                0 => rule.start = value,
                4 => rule.end = value,
                8 => {
                    let (perms, enabled, lock, subject) = decode_flags(value);
                    rule.perms = perms;
                    rule.enabled = enabled;
                    rule.locked = lock;
                    rule.subject = subject;
                }
                _ => return Err(MpuMmioError { off }),
            }
            self.mmio_set_slot_raw(index, rule);
            return Ok(());
        }
        match off {
            REG_FAULT_CLEAR => {
                self.clear_fault();
                Ok(())
            }
            REG_SLOT_COUNT | REG_WRITE_COUNT | REG_FAULT_IP | REG_FAULT_ADDR | REG_FAULT_KIND => {
                // Read-only registers: writes dropped.
                Ok(())
            }
            _ => Err(MpuMmioError { off }),
        }
    }
}

/// Validity helper used by tests and the loader: true if `kind` on the
/// MPU window itself would be required for a task to reprogram the MPU.
pub fn is_mpu_config_access(off: u32, kind: AccessKind) -> bool {
    kind == AccessKind::Write && off < CTRL_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_roundtrip() {
        let rule = RuleSlot {
            start: 0x100,
            end: 0x200,
            perms: Perms::RX,
            subject: Subject::Region(3),
            enabled: true,
            locked: false,
        };
        let (p, e, l, s) = decode_flags(encode_flags(&rule));
        assert_eq!(p, Perms::RX);
        assert!(e);
        assert!(!l);
        assert_eq!(s, Subject::Region(3));
    }

    #[test]
    fn program_slot_over_mmio() {
        let mut m = EaMpu::new(4);
        m.mmio_write(slot_start_off(1), 0x1000).unwrap();
        m.mmio_write(slot_end_off(1), 0x2000).unwrap();
        let flags = encode_flags(&RuleSlot {
            start: 0,
            end: 0,
            perms: Perms::RW,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        });
        m.mmio_write(slot_flags_off(1), flags).unwrap();
        assert!(m.allows(0xdead, 0x1800, AccessKind::Write));
        assert_eq!(m.mmio_read(slot_start_off(1)), Ok(0x1000));
        assert_eq!(m.mmio_read(slot_end_off(1)), Ok(0x2000));
        assert_eq!(m.write_count(), 3, "three writes defined the region");
    }

    #[test]
    fn locked_slot_drops_writes_silently() {
        let mut m = EaMpu::new(2);
        let flags_locked = encode_flags(&RuleSlot {
            start: 0,
            end: 0,
            perms: Perms::R,
            subject: Subject::Any,
            enabled: true,
            locked: true,
        });
        m.mmio_write(slot_start_off(0), 0x100).unwrap();
        m.mmio_write(slot_end_off(0), 0x200).unwrap();
        m.mmio_write(slot_flags_off(0), flags_locked).unwrap();
        let writes = m.write_count();
        // Attempt to widen the region: silently dropped.
        m.mmio_write(slot_end_off(0), 0xffff_ffff).unwrap();
        m.mmio_write(slot_flags_off(0), 0).unwrap();
        assert_eq!(m.mmio_read(slot_end_off(0)), Ok(0x200));
        assert!(m.allows(0, 0x180, AccessKind::Read), "rule unchanged");
        assert_eq!(m.write_count(), writes, "dropped writes not counted");
    }

    #[test]
    fn control_block_reads() {
        let mut m = EaMpu::new(8);
        assert_eq!(m.mmio_read(REG_SLOT_COUNT), Ok(8));
        assert_eq!(m.mmio_read(REG_FAULT_KIND), Ok(NO_FAULT));
        let _ = m.check(0x42, 0x9999, AccessKind::Write);
        assert_eq!(m.mmio_read(REG_FAULT_IP), Ok(0x42));
        assert_eq!(m.mmio_read(REG_FAULT_ADDR), Ok(0x9999));
        assert_eq!(m.mmio_read(REG_FAULT_KIND), Ok(AccessKind::Write.code()));
        m.mmio_write(REG_FAULT_CLEAR, 1).unwrap();
        assert_eq!(m.mmio_read(REG_FAULT_KIND), Ok(NO_FAULT));
    }

    #[test]
    fn read_only_control_regs_drop_writes() {
        let mut m = EaMpu::new(2);
        m.mmio_write(REG_WRITE_COUNT, 999).unwrap();
        assert_eq!(m.mmio_read(REG_WRITE_COUNT), Ok(0));
    }

    #[test]
    fn bad_offsets_error() {
        let mut m = EaMpu::new(2);
        // Beyond the last slot but before the control block.
        assert!(m.mmio_read(slot_start_off(2)).is_err());
        assert!(m.mmio_write(slot_start_off(3), 0).is_err());
        // Hole after the control block.
        assert!(m.mmio_read(CTRL_BASE + 24).is_err());
    }

    #[test]
    fn mmio_matches_host_api() {
        // Programming via MMIO and via set_rule must agree.
        let mut a = EaMpu::new(2);
        let mut b = EaMpu::new(2);
        let rule = RuleSlot {
            start: 0x500,
            end: 0x700,
            perms: Perms::RWX,
            subject: Subject::Region(0),
            enabled: true,
            locked: false,
        };
        b.set_rule(0, rule).unwrap();
        a.mmio_write(slot_start_off(0), rule.start).unwrap();
        a.mmio_write(slot_end_off(0), rule.end).unwrap();
        a.mmio_write(slot_flags_off(0), encode_flags(&rule))
            .unwrap();
        assert_eq!(a.slot(0), b.slot(0));
        assert_eq!(a.write_count(), b.write_count());
    }
}
