//! A conventional privilege-level MPU (the baseline TrustLite improves on).
//!
//! Stock MPUs (the paper cites the ARMv7-M PMSA, Infineon XC2000 and TI
//! KeyStone MPUs) enforce r/w/x per region *per CPU privilege level*. To
//! protect many tasks from each other, the OS must reprogram the
//! user-level rules on every context switch — which makes the OS a single
//! point of failure (Section 3.2). This model exists so that tests and
//! benches can demonstrate precisely that distinction, and to price the
//! OS-reprogramming overhead a conventional design pays per switch.

use crate::access::{AccessKind, MpuFault, Perms};

/// CPU privilege level used by the conventional MPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivLevel {
    /// Unprivileged task execution.
    User,
    /// Privileged (OS/kernel) execution.
    Supervisor,
}

/// One region of a conventional MPU: separate permissions per level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StdRegion {
    /// First byte of the region.
    pub start: u32,
    /// One past the last byte.
    pub end: u32,
    /// Permissions in user mode.
    pub user: Perms,
    /// Permissions in supervisor mode.
    pub supervisor: Perms,
    /// Whether the region participates in checks.
    pub enabled: bool,
}

impl StdRegion {
    /// A disabled empty region.
    pub const EMPTY: StdRegion = StdRegion {
        start: 0,
        end: 0,
        user: Perms::NONE,
        supervisor: Perms::NONE,
        enabled: false,
    };

    fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }
}

/// A conventional privilege-level MPU.
#[derive(Debug, Clone)]
pub struct StandardMpu {
    regions: Vec<StdRegion>,
    /// Register writes performed (each region costs three, as for the
    /// EA-MPU; the interesting metric is *when* writes happen — on every
    /// context switch — not how many per region).
    write_count: u64,
}

impl StandardMpu {
    /// Creates a standard MPU with `regions` empty regions.
    pub fn new(regions: usize) -> Self {
        StandardMpu {
            regions: vec![StdRegion::EMPTY; regions],
            write_count: 0,
        }
    }

    /// Number of region registers.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Programs one region (three register writes).
    pub fn set_region(&mut self, index: usize, region: StdRegion) -> Result<(), usize> {
        let slot = self.regions.get_mut(index).ok_or(index)?;
        *slot = region;
        self.write_count += 3;
        Ok(())
    }

    /// Register-write counter.
    pub fn write_count(&self) -> u64 {
        self.write_count
    }

    /// Pure query: is the access allowed at `level`?
    pub fn allows(&self, level: PrivLevel, addr: u32, kind: AccessKind) -> bool {
        self.regions.iter().any(|r| {
            r.enabled
                && r.contains(addr)
                && match level {
                    PrivLevel::User => r.user.allows(kind),
                    PrivLevel::Supervisor => r.supervisor.allows(kind),
                }
        })
    }

    /// Validates an access.
    pub fn check(
        &self,
        level: PrivLevel,
        ip: u32,
        addr: u32,
        kind: AccessKind,
    ) -> Result<(), MpuFault> {
        if self.allows(level, addr, kind) {
            Ok(())
        } else {
            Err(MpuFault { ip, addr, kind })
        }
    }

    /// Models the OS context-switch reprogramming a conventional MPU
    /// requires: rewrite the user-permissions of `regions` regions for the
    /// next scheduled task. Returns the number of register writes spent.
    pub fn reprogram_for_task(&mut self, regions: &[(usize, StdRegion)]) -> Result<u64, usize> {
        let mut writes = 0;
        for &(idx, region) in regions {
            self.set_region(idx, region)?;
            writes += 3;
        }
        Ok(writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> StandardMpu {
        let mut m = StandardMpu::new(4);
        // Kernel memory: supervisor rwx, user none.
        m.set_region(
            0,
            StdRegion {
                start: 0x0,
                end: 0x1000,
                user: Perms::NONE,
                supervisor: Perms::RWX,
                enabled: true,
            },
        )
        .unwrap();
        // Current task's memory: both levels rw, user executes.
        m.set_region(
            1,
            StdRegion {
                start: 0x1000,
                end: 0x2000,
                user: Perms::RWX,
                supervisor: Perms::RW,
                enabled: true,
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn privilege_separation() {
        let m = two_level();
        assert!(m.allows(PrivLevel::Supervisor, 0x100, AccessKind::Write));
        assert!(!m.allows(PrivLevel::User, 0x100, AccessKind::Read));
        assert!(m.allows(PrivLevel::User, 0x1800, AccessKind::Execute));
        assert!(!m.allows(PrivLevel::Supervisor, 0x1800, AccessKind::Execute));
    }

    #[test]
    fn no_execution_awareness() {
        // The defining limitation: the same user-level code can reach
        // everything user-accessible, regardless of *which* task runs.
        let m = two_level();
        for ip in [0x1000u32, 0x1ffc] {
            assert!(
                m.check(PrivLevel::User, ip, 0x1800, AccessKind::Write)
                    .is_ok(),
                "user access independent of ip {ip:#x}"
            );
        }
    }

    #[test]
    fn default_deny() {
        let m = StandardMpu::new(2);
        assert!(!m.allows(PrivLevel::Supervisor, 0, AccessKind::Read));
    }

    #[test]
    fn reprogram_counts_writes() {
        let mut m = two_level();
        let before = m.write_count();
        let spent = m
            .reprogram_for_task(&[(
                1,
                StdRegion {
                    start: 0x2000,
                    end: 0x3000,
                    user: Perms::RWX,
                    supervisor: Perms::RW,
                    enabled: true,
                },
            )])
            .unwrap();
        assert_eq!(spent, 3);
        assert_eq!(m.write_count(), before + 3);
        // The switch re-targeted user access: old task memory unreachable.
        assert!(!m.allows(PrivLevel::User, 0x1800, AccessKind::Read));
        assert!(m.allows(PrivLevel::User, 0x2800, AccessKind::Read));
    }

    #[test]
    fn bad_index_reported() {
        let mut m = StandardMpu::new(1);
        assert_eq!(m.set_region(3, StdRegion::EMPTY), Err(3));
    }
}
