//! Differential property tests: the grant micro-TLB must be observably
//! invisible. A cached EA-MPU and an uncached reference are driven with
//! the same random mix of checks and rule mutations; every verdict,
//! hardware counter and the latched fault record must stay bit-identical.

use proptest::prelude::*;
use trustlite_mpu::{AccessKind, EaMpu, Perms, RuleSlot, Subject};

const SLOTS: usize = 8;

fn any_kind() -> impl Strategy<Value = AccessKind> {
    (0usize..3).prop_map(|i| AccessKind::ALL[i])
}

fn any_rule() -> impl Strategy<Value = RuleSlot> {
    (
        any::<u32>(),
        any::<u32>(),
        0u8..8,
        prop_oneof![Just(0xffu8), 0u8..8],
        any::<bool>(),
    )
        .prop_map(|(a, b, perms, subj, enabled)| RuleSlot {
            // Bias ranges into a small arena so checks actually land in
            // and around them (pure random u32 ranges almost never hit).
            start: (a % 0x2000).min(b % 0x2000),
            end: (a % 0x2000).max(b % 0x2000),
            perms: Perms::from_bits(perms),
            subject: Subject::from_code(subj),
            enabled,
            locked: false,
        })
}

#[derive(Debug, Clone)]
enum Op {
    Check {
        ip: u32,
        addr: u32,
        kind: AccessKind,
    },
    SetRule {
        slot: usize,
        rule: RuleSlot,
    },
    Lock {
        slot: usize,
    },
    Reset,
}

fn any_op() -> impl Strategy<Value = Op> {
    (
        0u8..12,
        any::<u32>(),
        any::<u32>(),
        any_kind(),
        any_rule(),
        0usize..SLOTS,
    )
        .prop_map(|(sel, ip, addr, kind, rule, slot)| match sel {
            // Mostly checks, in the same arena the rules live in, with an
            // occasional full-range probe for boundary coverage.
            0..=7 => Op::Check {
                ip: ip % 0x2000,
                addr: addr % 0x2000,
                kind,
            },
            8 => Op::Check { ip, addr, kind },
            9 => Op::SetRule { slot, rule },
            10 => Op::Lock { slot },
            _ => Op::Reset,
        })
}

proptest! {
    /// Cached and uncached EA-MPUs agree on everything observable across
    /// arbitrary interleavings of checks and rule mutations.
    #[test]
    fn cached_check_is_bit_identical(
        rules in proptest::collection::vec(any_rule(), 0..SLOTS),
        ops in proptest::collection::vec(any_op(), 1..40),
    ) {
        let mut cached = EaMpu::new(SLOTS);
        let mut plain = EaMpu::new(SLOTS);
        plain.set_grant_cache(false);
        prop_assert!(cached.grant_cache_enabled());
        prop_assert!(!plain.grant_cache_enabled());

        for (i, r) in rules.iter().enumerate() {
            cached.set_rule(i, *r).unwrap();
            plain.set_rule(i, *r).unwrap();
        }

        for op in &ops {
            match *op {
                Op::Check { ip, addr, kind } => {
                    prop_assert_eq!(
                        cached.check(ip, addr, kind),
                        plain.check(ip, addr, kind),
                        "verdict diverged at ip={:#x} addr={:#x} {:?}", ip, addr, kind
                    );
                }
                Op::SetRule { slot, rule } => {
                    prop_assert_eq!(cached.set_rule(slot, rule), plain.set_rule(slot, rule));
                }
                Op::Lock { slot } => {
                    prop_assert_eq!(cached.lock_slot(slot), plain.lock_slot(slot));
                }
                Op::Reset => {
                    cached.reset();
                    plain.reset();
                }
            }
            prop_assert_eq!(cached.check_count(), plain.check_count());
            prop_assert_eq!(cached.deny_count(), plain.deny_count());
            prop_assert_eq!(cached.write_count(), plain.write_count());
            prop_assert_eq!(cached.slot_hits(), plain.slot_hits());
            prop_assert_eq!(cached.last_fault(), plain.last_fault());
        }
    }

    /// Repeating the same check many times (maximal cache-hit pressure)
    /// accumulates exactly the same counters as the uncached scan.
    #[test]
    fn repeated_hits_count_identically(
        rules in proptest::collection::vec(any_rule(), 1..SLOTS),
        ip in any::<u32>(),
        addr in any::<u32>(),
        kind in any_kind(),
        reps in 1usize..16,
    ) {
        let mut cached = EaMpu::new(SLOTS);
        let mut plain = EaMpu::new(SLOTS);
        plain.set_grant_cache(false);
        for (i, r) in rules.iter().enumerate() {
            cached.set_rule(i, *r).unwrap();
            plain.set_rule(i, *r).unwrap();
        }
        for _ in 0..reps {
            prop_assert_eq!(cached.check(ip, addr, kind), plain.check(ip, addr, kind));
        }
        prop_assert_eq!(cached.check_count(), plain.check_count());
        prop_assert_eq!(cached.deny_count(), plain.deny_count());
        prop_assert_eq!(cached.slot_hits(), plain.slot_hits());
        prop_assert_eq!(cached.last_fault(), plain.last_fault());
    }
}
