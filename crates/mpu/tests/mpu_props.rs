//! Property tests on the EA-MPU rule algebra.

use proptest::prelude::*;
use trustlite_mpu::mmio::{decode_flags, encode_flags};
use trustlite_mpu::{AccessKind, EaMpu, Perms, RuleSlot, Subject};

fn any_kind() -> impl Strategy<Value = AccessKind> {
    (0usize..3).prop_map(|i| AccessKind::ALL[i])
}

fn any_rule() -> impl Strategy<Value = RuleSlot> {
    (
        any::<u32>(),
        any::<u32>(),
        0u8..8,
        prop_oneof![Just(0xffu8), 0u8..8],
        any::<bool>(),
    )
        .prop_map(|(a, b, perms, subj, enabled)| RuleSlot {
            start: a.min(b),
            end: a.max(b),
            perms: Perms::from_bits(perms),
            subject: Subject::from_code(subj),
            enabled,
            locked: false,
        })
}

proptest! {
    /// With no rules programmed, every access is denied (default deny).
    #[test]
    fn default_deny(ip in any::<u32>(), addr in any::<u32>(), kind in any_kind()) {
        let mpu = EaMpu::new(8);
        prop_assert!(!mpu.allows(ip, addr, kind));
    }

    /// Adding a rule never revokes an access that was previously allowed
    /// (rules are purely additive grants).
    #[test]
    fn rules_are_monotonic(
        rules in proptest::collection::vec(any_rule(), 1..6),
        extra in any_rule(),
        ip in any::<u32>(),
        addr in any::<u32>(),
        kind in any_kind(),
    ) {
        let mut mpu = EaMpu::new(8);
        for (i, r) in rules.iter().enumerate() {
            mpu.set_rule(i, *r).unwrap();
        }
        let before = mpu.allows(ip, addr, kind);
        mpu.set_rule(rules.len(), extra).unwrap();
        if before {
            prop_assert!(mpu.allows(ip, addr, kind), "grant revoked by unrelated rule");
        }
    }

    /// An allowed access implies a witnessing enabled rule.
    #[test]
    fn allowed_access_has_witness(
        rules in proptest::collection::vec(any_rule(), 0..8),
        ip in any::<u32>(),
        addr in any::<u32>(),
        kind in any_kind(),
    ) {
        let mut mpu = EaMpu::new(8);
        for (i, r) in rules.iter().enumerate() {
            mpu.set_rule(i, *r).unwrap();
        }
        if mpu.allows(ip, addr, kind) {
            let witness = mpu.slots().iter().any(|s| {
                s.enabled && s.contains(addr) && s.perms.allows(kind)
            });
            prop_assert!(witness);
        }
    }

    /// Execution awareness: a rule bound to a subject region is inert for
    /// instruction pointers outside that region.
    #[test]
    fn subject_binding_excludes_foreign_ip(
        code_start in 0u32..0x1000,
        data_addr in 0x8000u32..0x9000,
        foreign_ip in 0x4000u32..0x5000,
        kind in any_kind(),
    ) {
        let mut mpu = EaMpu::new(4);
        mpu.set_rule(0, RuleSlot {
            start: code_start,
            end: code_start + 0x100,
            perms: Perms::RX,
            subject: Subject::Region(0),
            enabled: true,
            locked: false,
        }).unwrap();
        mpu.set_rule(1, RuleSlot {
            start: 0x8000,
            end: 0x9000,
            perms: Perms::RWX,
            subject: Subject::Region(0),
            enabled: true,
            locked: false,
        }).unwrap();
        // Inside the code region: allowed.
        prop_assert!(mpu.allows(code_start, data_addr, kind));
        // Outside (foreign ip 0x4000..0x5000 never overlaps 0..0x1100): denied.
        prop_assert!(!mpu.allows(foreign_ip, data_addr, kind));
    }

    /// MMIO FLAGS encoding round-trips every field combination.
    #[test]
    fn flags_roundtrip(perms in 0u8..8, enabled in any::<bool>(),
                       locked in any::<bool>(), subj in any::<u8>()) {
        let rule = RuleSlot {
            start: 0,
            end: 0,
            perms: Perms::from_bits(perms),
            subject: Subject::from_code(subj),
            enabled,
            locked,
        };
        let (p, e, l, s) = decode_flags(encode_flags(&rule));
        prop_assert_eq!(p, rule.perms);
        prop_assert_eq!(e, rule.enabled);
        prop_assert_eq!(l, rule.locked);
        prop_assert_eq!(s, rule.subject);
    }

    /// The check() fault record always matches the denied access triple.
    #[test]
    fn fault_record_matches_access(ip in any::<u32>(), addr in any::<u32>(), kind in any_kind()) {
        let mut mpu = EaMpu::new(2);
        let err = mpu.check(ip, addr, kind).unwrap_err();
        prop_assert_eq!(err.ip, ip);
        prop_assert_eq!(err.addr, addr);
        prop_assert_eq!(err.kind, kind);
        prop_assert_eq!(mpu.last_fault(), Some(err));
    }
}
