//! Per-trustlet cycle attribution.
//!
//! The machine charges each retired instruction's cost to the *domain*
//! owning its instruction pointer — the OS code region, a trustlet code
//! region, or the catch-all `other`. Cycles spent inside the exception
//! engine (which runs on behalf of no instruction) are charged to the
//! `exception_engine` pseudo-domain, so attributed totals always sum to
//! the machine's cycle counter.

use std::collections::BTreeMap;

/// A named attribution domain: one or more half-open IP ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Domain {
    name: String,
    ranges: Vec<(u32, u32)>,
}

/// Per-domain attributed cycles, as reported.
pub type DomainReport = Vec<(String, u64)>;

/// The cycle-attribution engine.
///
/// Lookup is cached on the last-hit domain: straight-line execution pays
/// one range comparison per instruction, a full scan only on domain
/// crossings.
#[derive(Debug, Default, Clone)]
pub struct Attribution {
    domains: Vec<Domain>,
    counts: Vec<u64>,
    other: u64,
    specials: BTreeMap<String, u64>,
    /// Cache: domain of the previous charge (`None` = `other`).
    last: Option<usize>,
    /// The range of `last` that matched, when `last` is `Some`:
    /// straight-line execution pays one wrapping compare per charge.
    last_lo: u32,
    last_len: u32,
    /// Whether any charge has happened yet (first never "switches").
    primed: bool,
    /// Number of context switches observed (owning domain changed
    /// between consecutive charges). Kept here so the hot switch path
    /// does not pay a by-name registry update; the machine mirrors it
    /// into the metrics registry at snapshot time.
    switches: u64,
}

/// Name of the catch-all domain for IPs outside every registered range.
pub const OTHER_DOMAIN: &str = "other";

/// Name of the pseudo-domain for exception-engine cycles.
pub const ENGINE_DOMAIN: &str = "exception_engine";

impl Attribution {
    /// Registers a domain covering `ranges`; later registrations with the
    /// same name extend the existing domain.
    pub fn register(&mut self, name: &str, ranges: &[(u32, u32)]) {
        if let Some(d) = self.domains.iter_mut().find(|d| d.name == name) {
            d.ranges.extend_from_slice(ranges);
        } else {
            self.domains.push(Domain {
                name: name.to_string(),
                ranges: ranges.to_vec(),
            });
            self.counts.push(0);
        }
        self.last = None;
        self.primed = false;
    }

    /// Removes all domains and counts.
    pub fn clear(&mut self) {
        self.domains.clear();
        self.counts.clear();
        self.other = 0;
        self.specials.clear();
        self.last = None;
        self.primed = false;
        self.switches = 0;
    }

    /// Zeroes the counts but keeps the registered domains.
    pub fn clear_counts(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
        self.other = 0;
        self.specials.clear();
        self.last = None;
        self.primed = false;
        self.switches = 0;
    }

    /// Context switches observed since the counts were last cleared.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// True if any domain is registered.
    pub fn has_domains(&self) -> bool {
        !self.domains.is_empty()
    }

    /// True once any charge has been recorded.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Name of the domain the most recent charge landed in.
    pub fn current_domain(&self) -> &str {
        self.name_of(self.last)
    }

    /// Finds the owning domain and the specific range that matched.
    fn lookup(&self, ip: u32) -> Option<(usize, u32, u32)> {
        self.domains.iter().enumerate().find_map(|(i, d)| {
            d.ranges
                .iter()
                .find(|&&(s, e)| ip >= s && ip < e)
                .map(|&(s, e)| (i, s, e))
        })
    }

    /// Name of the domain at `idx`, with `None` meaning the catch-all
    /// [`OTHER_DOMAIN`] (the index form returned by
    /// [`Attribution::charge`]).
    pub fn name_of(&self, idx: Option<usize>) -> &str {
        match idx {
            Some(i) => &self.domains[i].name,
            None => OTHER_DOMAIN,
        }
    }

    /// Charges `cost` cycles to the domain owning `ip`. Returns
    /// `Some((from, to))` domain indices (resolvable through
    /// [`Attribution::name_of`]) when the owning domain differs from the
    /// previous charge's domain (a context switch). Indices instead of
    /// names keep the switch path allocation-free — sinks that want
    /// strings resolve them only when they actually record the event.
    #[inline]
    #[allow(clippy::type_complexity)]
    pub fn charge(&mut self, ip: u32, cost: u64) -> Option<(Option<usize>, Option<usize>)> {
        // Fast path: still inside the range the previous charge matched.
        if self.primed {
            if let Some(i) = self.last {
                if ip.wrapping_sub(self.last_lo) < self.last_len {
                    self.counts[i] += cost;
                    return None;
                }
            } else if self.lookup(ip).is_none() {
                self.other += cost;
                return None;
            }
        }
        let hit = self.lookup(ip);
        let idx = match hit {
            Some((i, s, e)) => {
                self.counts[i] += cost;
                self.last_lo = s;
                self.last_len = e - s;
                Some(i)
            }
            None => {
                self.other += cost;
                None
            }
        };
        let switched = self.primed && idx != self.last;
        let result = if switched {
            self.switches += 1;
            Some((self.last, idx))
        } else {
            None
        };
        self.last = idx;
        self.primed = true;
        result
    }

    /// Charges `cost` cycles to a named pseudo-domain (e.g. the
    /// exception engine).
    pub fn charge_special(&mut self, name: &str, cost: u64) {
        *self.specials.entry(name.to_string()).or_insert(0) += cost;
    }

    /// Total attributed cycles across all domains.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.other + self.specials.values().sum::<u64>()
    }

    /// The per-domain breakdown: every registered domain (even at zero),
    /// then `other` and the pseudo-domains when non-zero.
    pub fn report(&self) -> DomainReport {
        let mut out: DomainReport = self
            .domains
            .iter()
            .zip(&self.counts)
            .map(|(d, &c)| (d.name.clone(), c))
            .collect();
        if self.other > 0 {
            out.push((OTHER_DOMAIN.to_string(), self.other));
        }
        for (name, &c) in &self.specials {
            if c > 0 {
                out.push((name.clone(), c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Attribution {
        let mut a = Attribution::default();
        a.register("os", &[(0x1000, 0x2000)]);
        a.register("t0", &[(0x4000, 0x5000)]);
        a
    }

    #[test]
    fn charges_land_in_owning_domain() {
        let mut a = setup();
        a.charge(0x1100, 10);
        a.charge(0x4100, 5);
        a.charge(0x9999, 2);
        assert_eq!(
            a.report(),
            vec![
                ("os".to_string(), 10),
                ("t0".to_string(), 5),
                ("other".to_string(), 2)
            ]
        );
        assert_eq!(a.total(), 17);
    }

    #[test]
    fn context_switch_reported_on_domain_change() {
        let mut a = setup();
        assert_eq!(a.charge(0x1100, 1), None, "first charge never switches");
        assert_eq!(a.charge(0x1104, 1), None, "same domain");
        let sw = a.charge(0x4100, 1).expect("os -> t0 switches");
        assert_eq!((a.name_of(sw.0), a.name_of(sw.1)), ("os", "t0"));
        let sw = a.charge(0x9000, 1).expect("t0 -> other switches");
        assert_eq!((a.name_of(sw.0), a.name_of(sw.1)), ("t0", "other"));
        assert_eq!(a.charge(0x9004, 1), None, "other -> other");
    }

    #[test]
    fn specials_and_totals() {
        let mut a = setup();
        a.charge(0x1100, 10);
        a.charge_special(ENGINE_DOMAIN, 21);
        assert_eq!(a.total(), 31);
        assert!(a.report().contains(&(ENGINE_DOMAIN.to_string(), 21)));
    }

    #[test]
    fn multi_range_domains() {
        let mut a = Attribution::default();
        a.register("loader", &[(0x0, 0x100)]);
        a.register("loader", &[(0x800, 0x900)]);
        a.charge(0x50, 1);
        a.charge(0x850, 2);
        assert_eq!(a.report(), vec![("loader".to_string(), 3)]);
    }

    #[test]
    fn clear_counts_keeps_domains() {
        let mut a = setup();
        a.charge(0x1100, 10);
        a.clear_counts();
        assert!(a.has_domains());
        assert_eq!(a.total(), 0);
        assert_eq!(
            a.report(),
            vec![("os".to_string(), 0), ("t0".to_string(), 0)]
        );
    }
}
