//! The structured event taxonomy.

use core::fmt;

/// Memory-access class carried by MPU events (mirrors the MPU's
/// `AccessKind` without depending on the MPU crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl AccessClass {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            AccessClass::Read => "read",
            AccessClass::Write => "write",
            AccessClass::Execute => "execute",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<AccessClass> {
        match s {
            "read" => Some(AccessClass::Read),
            "write" => Some(AccessClass::Write),
            "execute" => Some(AccessClass::Execute),
            _ => None,
        }
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of an EA-MPU check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The access was granted.
    Allow,
    /// The access was denied (a fault follows).
    Deny,
}

impl Verdict {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Allow => "allow",
            Verdict::Deny => "deny",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Verdict> {
        match s {
            "allow" => Some(Verdict::Allow),
            "deny" => Some(Verdict::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One telemetry event. Every variant carries the cycle-counter value at
/// which it was recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An instruction retired (firehose; replaces the legacy
    /// `(cycle, ip, instr)` trace ring).
    InstrRetired {
        /// Cycle at which execution of the instruction began.
        cycle: u64,
        /// Address of the instruction.
        ip: u32,
        /// Raw instruction word (disassemble with `trustlite-isa`).
        word: u32,
        /// Cycles charged for the instruction.
        cost: u64,
    },
    /// The EA-MPU validated one access (firehose).
    MpuCheck {
        /// Cycle stamp.
        cycle: u64,
        /// Subject instruction pointer.
        subject: u32,
        /// Object address.
        addr: u32,
        /// Access class.
        kind: AccessClass,
        /// Check outcome.
        verdict: Verdict,
    },
    /// The EA-MPU denied an access and raised a protection fault.
    MpuFault {
        /// Cycle stamp.
        cycle: u64,
        /// Subject instruction pointer.
        ip: u32,
        /// Object address.
        addr: u32,
        /// Access class.
        kind: AccessClass,
    },
    /// The exception engine dispatched an exception or interrupt.
    ExceptionEnter {
        /// Cycle at which the exception was recognized.
        cycle: u64,
        /// Resolved vector number.
        vector: u8,
        /// Trustlet Table row index if a trustlet was interrupted.
        trustlet: Option<u32>,
        /// Instruction pointer that was interrupted.
        interrupted_ip: u32,
        /// Trustlet stack pointer saved to the Trustlet Table (0 when no
        /// trustlet was interrupted).
        saved_sp: u32,
        /// Engine cycles from recognition to the first ISR instruction.
        cycles: u64,
    },
    /// An `iret` retired, returning from an exception.
    ExceptionExit {
        /// Cycle stamp (at the start of the `iret`).
        cycle: u64,
        /// Instruction pointer resumed to.
        resumed_ip: u32,
        /// Cycles consumed by the return path.
        cycles: u64,
    },
    /// The secure exception engine cleared the general-purpose registers.
    RegsCleared {
        /// Cycle stamp.
        cycle: u64,
        /// Number of registers cleared.
        count: u32,
    },
    /// A Secure Loader boot phase completed. Loader work is host-side, so
    /// the timeline is in estimated cycles (one per observable operation)
    /// starting at `start`.
    LoaderPhase {
        /// Phase start on the estimated-cycle timeline.
        start: u64,
        /// Phase name (`reset`, `authenticate`, `copy_images`, …).
        phase: String,
        /// Observable operations performed (copies, register writes, …).
        ops: u64,
    },
    /// Execution moved between attribution domains (OS ↔ trustlet, …).
    ContextSwitch {
        /// Cycle stamp.
        cycle: u64,
        /// Name of the domain execution left.
        from: String,
        /// Name of the domain execution entered.
        to: String,
        /// First instruction pointer in the new domain.
        ip: u32,
    },
    /// An IPC message left a sender (handshake `syn`/`ack` or data).
    IpcSend {
        /// Cycle stamp.
        cycle: u64,
        /// Sender identifier.
        from: u32,
        /// Receiver identifier.
        to: u32,
        /// Message kind (`syn`, `ack`, `data`).
        kind: String,
    },
    /// An IPC message was accepted by a receiver.
    IpcRecv {
        /// Cycle stamp.
        cycle: u64,
        /// Sender identifier.
        from: u32,
        /// Receiver identifier.
        to: u32,
        /// Message kind (`syn`, `ack`, `data`).
        kind: String,
    },
}

impl Event {
    /// The event's cycle stamp ([`Event::LoaderPhase`] reports its start).
    pub fn cycle(&self) -> u64 {
        match self {
            Event::InstrRetired { cycle, .. }
            | Event::MpuCheck { cycle, .. }
            | Event::MpuFault { cycle, .. }
            | Event::ExceptionEnter { cycle, .. }
            | Event::ExceptionExit { cycle, .. }
            | Event::RegsCleared { cycle, .. }
            | Event::ContextSwitch { cycle, .. }
            | Event::IpcSend { cycle, .. }
            | Event::IpcRecv { cycle, .. } => *cycle,
            Event::LoaderPhase { start, .. } => *start,
        }
    }

    /// Stable wire name of the variant.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::InstrRetired { .. } => "instr_retired",
            Event::MpuCheck { .. } => "mpu_check",
            Event::MpuFault { .. } => "mpu_fault",
            Event::ExceptionEnter { .. } => "exception_enter",
            Event::ExceptionExit { .. } => "exception_exit",
            Event::RegsCleared { .. } => "regs_cleared",
            Event::LoaderPhase { .. } => "loader_phase",
            Event::ContextSwitch { .. } => "context_switch",
            Event::IpcSend { .. } => "ipc_send",
            Event::IpcRecv { .. } => "ipc_recv",
        }
    }
}
