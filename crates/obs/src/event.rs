//! The structured event taxonomy.

use core::fmt;

/// Memory-access class carried by MPU events (mirrors the MPU's
/// `AccessKind` without depending on the MPU crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl AccessClass {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            AccessClass::Read => "read",
            AccessClass::Write => "write",
            AccessClass::Execute => "execute",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<AccessClass> {
        match s {
            "read" => Some(AccessClass::Read),
            "write" => Some(AccessClass::Write),
            "execute" => Some(AccessClass::Execute),
            _ => None,
        }
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of an EA-MPU check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The access was granted.
    Allow,
    /// The access was denied (a fault follows).
    Deny,
}

impl Verdict {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Allow => "allow",
            Verdict::Deny => "deny",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Verdict> {
        match s {
            "allow" => Some(Verdict::Allow),
            "deny" => Some(Verdict::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Secure Loader boot phase (the closed Figure 5 sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoaderStage {
    /// Platform reset.
    Reset,
    /// Image signature verification.
    Authenticate,
    /// Image copy into isolated memory.
    CopyImages,
    /// Measurement (hashing) of loaded images.
    Measure,
    /// EA-MPU region programming.
    ProgramMpu,
    /// Trustlet Table / IDT construction.
    ConfigTables,
    /// Handoff to the OS entry point.
    Launch,
}

impl LoaderStage {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            LoaderStage::Reset => "reset",
            LoaderStage::Authenticate => "authenticate",
            LoaderStage::CopyImages => "copy_images",
            LoaderStage::Measure => "measure",
            LoaderStage::ProgramMpu => "program_mpu",
            LoaderStage::ConfigTables => "config_tables",
            LoaderStage::Launch => "launch",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<LoaderStage> {
        match s {
            "reset" => Some(LoaderStage::Reset),
            "authenticate" => Some(LoaderStage::Authenticate),
            "copy_images" => Some(LoaderStage::CopyImages),
            "measure" => Some(LoaderStage::Measure),
            "program_mpu" => Some(LoaderStage::ProgramMpu),
            "config_tables" => Some(LoaderStage::ConfigTables),
            "launch" => Some(LoaderStage::Launch),
            _ => None,
        }
    }
}

impl fmt::Display for LoaderStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// IPC message kind carried by [`Event::IpcSend`] / [`Event::IpcRecv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcKind {
    /// Handshake open.
    Syn,
    /// Handshake acknowledge.
    Ack,
    /// Payload message on an established channel.
    Data,
}

impl IpcKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            IpcKind::Syn => "syn",
            IpcKind::Ack => "ack",
            IpcKind::Data => "data",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<IpcKind> {
        match s {
            "syn" => Some(IpcKind::Syn),
            "ack" => Some(IpcKind::Ack),
            "data" => Some(IpcKind::Data),
            _ => None,
        }
    }
}

impl fmt::Display for IpcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The attribution edge of a [`Event::ContextSwitch`]. Domain names are
/// registered at runtime, so they live on the heap; the pair is boxed so
/// the switch variant does not inflate every slot of the firehose ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchEdge {
    /// Name of the domain execution left.
    pub from: String,
    /// Name of the domain execution entered.
    pub to: String,
}

/// Payload of [`Event::ExceptionEnter`]. Wide but rare relative to the
/// firehose variants, so it is boxed to keep [`Event`] itself small.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcFrame {
    /// Resolved vector number.
    pub vector: u8,
    /// Trustlet Table row index if a trustlet was interrupted.
    pub trustlet: Option<u32>,
    /// Instruction pointer that was interrupted.
    pub interrupted_ip: u32,
    /// Trustlet stack pointer saved to the Trustlet Table (0 when no
    /// trustlet was interrupted).
    pub saved_sp: u32,
    /// Engine cycles from recognition to the first ISR instruction.
    pub cycles: u64,
}

/// One telemetry event. Every variant carries the cycle-counter value at
/// which it was recorded.
///
/// Size discipline: at [`crate::ObsLevel::Full`] the ring streams ~2.3
/// events per instruction, so the enum is kept at or below 32 bytes
/// (asserted by a test) — hot variants are inline and pointer-free, and
/// the wide or heap-carrying cold variants box their payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An instruction retired (firehose; replaces the legacy
    /// `(cycle, ip, instr)` trace ring).
    InstrRetired {
        /// Cycle at which execution of the instruction began.
        cycle: u64,
        /// Address of the instruction.
        ip: u32,
        /// Raw instruction word (disassemble with `trustlite-isa`).
        word: u32,
        /// Cycles charged for the instruction.
        cost: u64,
    },
    /// The EA-MPU validated one access (firehose).
    MpuCheck {
        /// Cycle stamp.
        cycle: u64,
        /// Subject instruction pointer.
        subject: u32,
        /// Object address.
        addr: u32,
        /// Access class.
        kind: AccessClass,
        /// Check outcome.
        verdict: Verdict,
    },
    /// The EA-MPU denied an access and raised a protection fault.
    MpuFault {
        /// Cycle stamp.
        cycle: u64,
        /// Subject instruction pointer.
        ip: u32,
        /// Object address.
        addr: u32,
        /// Access class.
        kind: AccessClass,
    },
    /// The exception engine dispatched an exception or interrupt.
    ExceptionEnter {
        /// Cycle at which the exception was recognized.
        cycle: u64,
        /// Dispatch details (vector, trustlet, saved state, engine cost).
        frame: Box<ExcFrame>,
    },
    /// An `iret` retired, returning from an exception.
    ExceptionExit {
        /// Cycle stamp (at the start of the `iret`).
        cycle: u64,
        /// Instruction pointer resumed to.
        resumed_ip: u32,
        /// Cycles consumed by the return path.
        cycles: u64,
    },
    /// The secure exception engine cleared the general-purpose registers.
    RegsCleared {
        /// Cycle stamp.
        cycle: u64,
        /// Number of registers cleared.
        count: u32,
    },
    /// A Secure Loader boot phase completed. Loader work is host-side, so
    /// the timeline is in estimated cycles (one per observable operation)
    /// starting at `start`.
    LoaderPhase {
        /// Phase start on the estimated-cycle timeline.
        start: u64,
        /// Phase identity.
        phase: LoaderStage,
        /// Observable operations performed (copies, register writes, …).
        ops: u64,
    },
    /// Execution moved between attribution domains (OS ↔ trustlet, …).
    ContextSwitch {
        /// Cycle stamp.
        cycle: u64,
        /// Domain names execution left and entered.
        edge: Box<SwitchEdge>,
        /// First instruction pointer in the new domain.
        ip: u32,
    },
    /// An IPC message left a sender (handshake `syn`/`ack` or data).
    IpcSend {
        /// Cycle stamp.
        cycle: u64,
        /// Sender identifier.
        from: u32,
        /// Receiver identifier.
        to: u32,
        /// Message kind.
        kind: IpcKind,
    },
    /// An IPC message was accepted by a receiver.
    IpcRecv {
        /// Cycle stamp.
        cycle: u64,
        /// Sender identifier.
        from: u32,
        /// Receiver identifier.
        to: u32,
        /// Message kind.
        kind: IpcKind,
    },
}

impl Event {
    /// The event's cycle stamp ([`Event::LoaderPhase`] reports its start).
    pub fn cycle(&self) -> u64 {
        match self {
            Event::InstrRetired { cycle, .. }
            | Event::MpuCheck { cycle, .. }
            | Event::MpuFault { cycle, .. }
            | Event::ExceptionEnter { cycle, .. }
            | Event::ExceptionExit { cycle, .. }
            | Event::RegsCleared { cycle, .. }
            | Event::ContextSwitch { cycle, .. }
            | Event::IpcSend { cycle, .. }
            | Event::IpcRecv { cycle, .. } => *cycle,
            Event::LoaderPhase { start, .. } => *start,
        }
    }

    /// Stable wire name of the variant.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::InstrRetired { .. } => "instr_retired",
            Event::MpuCheck { .. } => "mpu_check",
            Event::MpuFault { .. } => "mpu_fault",
            Event::ExceptionEnter { .. } => "exception_enter",
            Event::ExceptionExit { .. } => "exception_exit",
            Event::RegsCleared { .. } => "regs_cleared",
            Event::LoaderPhase { .. } => "loader_phase",
            Event::ContextSwitch { .. } => "context_switch",
            Event::IpcSend { .. } => "ipc_send",
            Event::IpcRecv { .. } => "ipc_recv",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// At `Full` capture the ring streams ~2.3 events per simulated
    /// instruction, so the enum's footprint is a first-order term in
    /// simulator throughput. Growing it past 32 bytes needs a deliberate
    /// decision (box the new payload instead).
    #[test]
    fn event_stays_at_firehose_size() {
        assert!(
            core::mem::size_of::<Event>() <= 32,
            "Event grew to {} bytes; box cold payloads to keep the \
             firehose ring small",
            core::mem::size_of::<Event>()
        );
    }

    #[test]
    fn closed_name_sets_round_trip() {
        for stage in [
            LoaderStage::Reset,
            LoaderStage::Authenticate,
            LoaderStage::CopyImages,
            LoaderStage::Measure,
            LoaderStage::ProgramMpu,
            LoaderStage::ConfigTables,
            LoaderStage::Launch,
        ] {
            assert_eq!(LoaderStage::from_name(stage.name()), Some(stage));
        }
        for kind in [IpcKind::Syn, IpcKind::Ack, IpcKind::Data] {
            assert_eq!(IpcKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(LoaderStage::from_name("warmup"), None);
        assert_eq!(IpcKind::from_name("nak"), None);
    }
}
