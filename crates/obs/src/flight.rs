//! The flight recorder: a bounded per-device black box.
//!
//! Every fleet device carries a [`FlightRecorder`] — a ring of the last
//! K [`SpanRecord`]s of fleet activity (challenges, responses, faults,
//! verifier verdicts, executed quanta). It is always on, bounded, and
//! fed only by deterministic inputs, so recording never perturbs the
//! simulation and two runs of the same fleet produce byte-identical
//! rings regardless of worker count or trace level.
//!
//! When a device is quarantined or crash-reset, the ring is snapshotted
//! together with the tail of the device's telemetry event ring and its
//! metrics counters into a [`FlightDump`] — the post-mortem evidence
//! that ships inside the `FleetReport`, so a verifier can explain *why*
//! a device was written off, not just that it was.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::event::Event;
use crate::json::{self, Json};
use crate::sink;
use crate::span::SpanRecord;

/// Default flight-recorder depth: enough for the last ~15–30 rounds of a
/// device's life at the fleet's typical 2–4 records per round.
pub const DEFAULT_FLIGHT_CAP: usize = 64;

/// A bounded ring of the most recent spans of one device's life.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `cap` spans (`cap == 0`
    /// records nothing, every push counts as dropped).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            spans: VecDeque::with_capacity(cap.min(DEFAULT_FLIGHT_CAP)),
            dropped: 0,
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends one span, evicting the oldest at capacity.
    pub fn record(&mut self, span: SpanRecord) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.spans.len() == self.cap {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted (oldest-first) since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Snapshots the ring into a post-mortem dump. `events` is the tail
    /// of the device's telemetry event ring (may be empty below
    /// `ObsLevel::Events`); `counters` its metrics counters at dump
    /// time.
    pub fn dump(
        &self,
        device: u32,
        round: u64,
        trigger: &str,
        events: Vec<Event>,
        counters: BTreeMap<String, u64>,
    ) -> FlightDump {
        FlightDump {
            device,
            round,
            trigger: trigger.to_string(),
            dropped: self.dropped,
            spans: self.spans.iter().cloned().collect(),
            events,
            counters,
        }
    }
}

/// One device's black box, captured at a quarantine or crash-reset.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// The device the dump belongs to.
    pub device: u32,
    /// The round the capture was triggered in.
    pub round: u64,
    /// What triggered the capture, e.g. `quarantine(bad_tag)` or
    /// `crash_reset`.
    pub trigger: String,
    /// Flight-recorder spans evicted before the capture (how much
    /// history the bounded ring lost).
    pub dropped: u64,
    /// The retained flight spans, oldest first. Non-empty for any device
    /// that executed at least one round: the recorder is always on.
    pub spans: Vec<SpanRecord>,
    /// Tail of the device's telemetry event ring (empty below
    /// `ObsLevel::Events`).
    pub events: Vec<Event>,
    /// The device's metrics counters at capture time.
    pub counters: BTreeMap<String, u64>,
}

impl FlightDump {
    /// Renders the dump as one JSONL trace line (no trailing newline).
    /// Field names are schema-stable.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\"kind\":\"flight\",\"device\":");
        let _ = write!(o, "{},\"round\":{},\"trigger\":", self.device, self.round);
        json::write_str(&mut o, &self.trigger);
        let _ = write!(o, ",\"dropped\":{},\"spans\":[", self.dropped);
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&s.to_json());
        }
        o.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&sink::event_to_json(e));
        }
        o.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            json::write_str(&mut o, k);
            let _ = write!(o, ":{v}");
        }
        o.push_str("}}");
        o
    }

    /// Parses a dump from an already-parsed JSON object.
    pub fn from_json(v: &Json) -> Result<FlightDump, String> {
        if v.get("kind").and_then(Json::as_str) != Some("flight") {
            return Err("not a flight record (kind != \"flight\")".to_string());
        }
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        };
        let arr = |key: &str| -> Result<&Vec<Json>, String> {
            match v.get(key) {
                Some(Json::Arr(a)) => Ok(a),
                _ => Err(format!("missing or non-array field `{key}`")),
            }
        };
        let spans = arr("spans")?
            .iter()
            .map(SpanRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let events = arr("events")?
            .iter()
            .map(sink::event_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let counters = match v.get("counters") {
            Some(Json::Obj(m)) => m
                .iter()
                .map(|(k, j)| {
                    j.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("non-integer counter `{k}`"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("missing or non-object field `counters`".to_string()),
        };
        Ok(FlightDump {
            device: u32::try_from(u("device")?).map_err(|_| "`device` out of range".to_string())?,
            round: u("round")?,
            trigger: v
                .get("trigger")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing or non-string field `trigger`".to_string())?
                .to_string(),
            dropped: u("dropped")?,
            spans,
            events,
            counters,
        })
    }

    /// Parses one JSONL flight line.
    pub fn parse(line: &str) -> Result<FlightDump, String> {
        let v = json::parse(line.trim()).map_err(|e| e.to_string())?;
        FlightDump::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn span(round: u64, kind: SpanKind) -> SpanRecord {
        SpanRecord {
            shard: 0,
            device: Some(2),
            round,
            kind,
            start_cycle: round,
            end_cycle: round + 1,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut fr = FlightRecorder::new(3);
        for r in 0..8 {
            fr.record(span(r, SpanKind::Quantum));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 5);
        let rounds: Vec<u64> = fr.iter().map(|s| s.round).collect();
        assert_eq!(rounds, [5, 6, 7]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut fr = FlightRecorder::new(0);
        fr.record(span(0, SpanKind::Quantum));
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 1);
    }

    #[test]
    fn dump_round_trips_through_json() {
        let mut fr = FlightRecorder::new(4);
        fr.record(span(0, SpanKind::Challenge));
        fr.record(span(0, SpanKind::Respond));
        fr.record(span(1, SpanKind::RejectBadTag));
        let mut counters = BTreeMap::new();
        counters.insert("cpu.instret".to_string(), 12_345u64);
        counters.insert("chaos.bit_flips".to_string(), 2u64);
        let events = vec![Event::RegsCleared { cycle: 9, count: 8 }];
        let dump = fr.dump(2, 1, "quarantine(bad_tag)", events, counters);
        assert_eq!(dump.spans.len(), 3);
        let parsed = FlightDump::parse(&dump.to_json()).expect("round-trip parses");
        assert_eq!(parsed, dump);
    }

    #[test]
    fn empty_dump_still_round_trips() {
        let fr = FlightRecorder::new(4);
        let dump = fr.dump(0, 0, "crash_reset", Vec::new(), BTreeMap::new());
        assert_eq!(FlightDump::parse(&dump.to_json()).expect("parses"), dump);
    }
}
