//! Minimal JSON support for the sinks: an escaping writer and a small
//! recursive-descent parser (used to read JSONL traces back, e.g. by
//! `tlstats` and the round-trip tests). No external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Numbers are split into integers (lossless for
/// cycle counters) and floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no fraction or exponent in the source).
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.lit("null", Json::Null),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let start = self.i - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    if len > 1 {
                        let end = start + len;
                        let bytes = self
                            .b
                            .get(start..end)
                            .ok_or_else(|| self.err("bad utf-8"))?;
                        let s = std::str::from_utf8(bytes).map_err(|_| self.err("bad utf-8"))?;
                        out.push_str(s);
                        self.i = end;
                    } else {
                        out.push(c as char);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.i += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii digits");
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("bad number"))
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escapes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\te\u{1}".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Int(1), Json::Int(-2), Json::Float(3.5)])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn big_integers_lossless() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::Int(u64::MAX as i128));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} extra").is_err());
    }
}
