//! Unified telemetry for the TrustLite simulator.
//!
//! The paper's entire evaluation is built on counting — cycles per
//! exception path, MPU register writes, loader overhead (Sections 5.3,
//! 5.4) — so the simulator carries one observability substrate instead of
//! scattered ad-hoc logs:
//!
//! * **Event stream** ([`Event`], [`EventRing`]) — a bounded ring of
//!   typed, cycle-stamped events covering instruction retirement, EA-MPU
//!   checks and faults, secure-exception entry/exit, register clearing,
//!   Secure Loader phases, context switches and IPC. Sinks render the
//!   ring as human-readable text ([`sink::text`]), JSONL
//!   ([`sink::jsonl`]) or a Chrome `trace_event` timeline
//!   ([`sink::chrome`]).
//! * **Metrics registry** ([`MetricsRegistry`]) — named counters and
//!   cycle histograms with a serializable [`MetricsReport`] snapshot.
//! * **Cycle attribution** ([`Attribution`]) — every retired
//!   instruction's cost is charged to the code region owning its IP,
//!   yielding the paper-style per-trustlet/OS breakdown; attributed
//!   totals always sum to the machine's cycle counter.
//! * **Fleet observatory** ([`SpanRecord`], [`FlightRecorder`],
//!   [`trace`]) — deterministic span records of fleet activity, a
//!   bounded per-device flight-recorder black box dumped on quarantine
//!   or crash-reset, and a schema-stable mixed JSONL trace format with
//!   log2-histogram quantile lines.
//!
//! All hot-path hooks sit behind a single [`Recorder::active`] check so a
//! machine with telemetry off pays one branch per instrumentation site.

pub mod attr;
pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod sink;
pub mod span;
pub mod trace;

pub use attr::{Attribution, DomainReport};
pub use event::{AccessClass, Event, ExcFrame, IpcKind, LoaderStage, SwitchEdge, Verdict};
pub use flight::{FlightDump, FlightRecorder, DEFAULT_FLIGHT_CAP};
pub use metrics::{Histogram, HistogramSummary, MetricsRegistry, MetricsReport};
pub use ring::EventRing;
pub use span::{SpanKind, SpanRecord};
pub use trace::{parse_trace, parse_trace_line, HistLine, TraceMeta, TraceRecord};

/// Default event-ring capacity (the legacy `Machine` trace depth).
pub const DEFAULT_RING_CAP: usize = 65_536;

/// What the recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Nothing; instrumentation sites reduce to one predictable branch.
    Off,
    /// Metrics and cycle attribution only — no events in the ring.
    Metrics,
    /// Metrics plus coarse events (exceptions, faults, loader phases,
    /// context switches, IPC). Per-instruction events are skipped.
    Events,
    /// Everything, including the per-instruction / per-MPU-check
    /// firehose ([`Event::InstrRetired`], [`Event::MpuCheck`]).
    Full,
}

/// The telemetry recorder shared by the CPU, MPU, loader and OS layers.
///
/// One `Recorder` lives inside the machine's system bus; every
/// instrumentation site stamps events with [`Recorder::now`], the cycle
/// counter mirrored in by `Machine::step`.
#[derive(Debug, Clone)]
pub struct Recorder {
    level: ObsLevel,
    now: u64,
    /// The bounded event stream.
    pub ring: EventRing,
    /// Named counters and histograms.
    pub metrics: MetricsRegistry,
    /// Per-region cycle attribution.
    pub attr: Attribution,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(ObsLevel::Off)
    }
}

impl Recorder {
    /// Creates a recorder at `level` with the default ring capacity.
    pub fn new(level: ObsLevel) -> Self {
        Recorder {
            level,
            now: 0,
            ring: EventRing::new(DEFAULT_RING_CAP),
            metrics: MetricsRegistry::default(),
            attr: Attribution::default(),
        }
    }

    /// The capture level.
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Sets the capture level.
    pub fn set_level(&mut self, level: ObsLevel) {
        self.level = level;
    }

    /// True if any capture is on — the cheap hot-path gate.
    #[inline(always)]
    pub fn active(&self) -> bool {
        self.level != ObsLevel::Off
    }

    /// True if coarse events are recorded.
    #[inline(always)]
    pub fn events_on(&self) -> bool {
        self.level >= ObsLevel::Events
    }

    /// True if per-instruction/per-check events are recorded.
    #[inline(always)]
    pub fn firehose_on(&self) -> bool {
        self.level >= ObsLevel::Full
    }

    /// True if metrics and attribution are updated.
    #[inline(always)]
    pub fn metrics_on(&self) -> bool {
        self.level >= ObsLevel::Metrics
    }

    /// Mirrors the machine's cycle counter into the recorder; events
    /// emitted until the next call are stamped with this value.
    #[inline(always)]
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    /// The current cycle stamp.
    #[inline(always)]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Records a coarse event (no-op below [`ObsLevel::Events`]).
    #[inline]
    pub fn emit(&mut self, event: Event) {
        if self.events_on() {
            self.ring.push(event);
        }
    }

    /// Records a firehose event (no-op below [`ObsLevel::Full`]).
    #[inline]
    pub fn emit_fine(&mut self, event: Event) {
        if self.firehose_on() {
            self.ring.push(event);
        }
    }

    /// Records a firehose event pair as one ring batch (no-op below
    /// [`ObsLevel::Full`]) — the superblock loop's per-retirement
    /// `MpuCheck` + `InstrRetired` emission. Ordering is identical to
    /// two [`Recorder::emit_fine`] calls.
    #[inline]
    pub fn emit_fine_pair(&mut self, a: Event, b: Event) {
        if self.firehose_on() {
            self.ring.push2(a, b);
        }
    }

    /// Charges `cost` cycles to the attribution domain owning `ip` and
    /// emits a [`Event::ContextSwitch`] when the owning domain changes.
    /// The very first charge emits a degenerate `from == to` switch so
    /// timeline sinks know which domain execution began in.
    #[inline]
    pub fn charge(&mut self, ip: u32, cost: u64) {
        if !self.metrics_on() {
            return;
        }
        let now = self.now;
        let opening = !self.attr.is_primed();
        if let Some((from, to)) = self.attr.charge(ip, cost) {
            if self.events_on() {
                self.ring.push(Event::ContextSwitch {
                    cycle: now,
                    edge: Box::new(SwitchEdge {
                        from: self.attr.name_of(from).to_string(),
                        to: self.attr.name_of(to).to_string(),
                    }),
                    ip,
                });
            }
        } else if opening && self.events_on() {
            let d = self.attr.current_domain().to_string();
            self.ring.push(Event::ContextSwitch {
                cycle: now,
                edge: Box::new(SwitchEdge {
                    from: d.clone(),
                    to: d,
                }),
                ip,
            });
        }
    }

    /// Charges `cost` cycles to the exception-engine pseudo-domain
    /// (cycles the hardware spends on behalf of no instruction).
    #[inline]
    pub fn charge_engine(&mut self, cost: u64) {
        if self.metrics_on() {
            self.attr.charge_special(attr::ENGINE_DOMAIN, cost);
        }
    }

    /// Clears captured data (ring, metrics, attribution) but keeps the
    /// level, capacity and registered attribution domains.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.metrics.clear();
        self.attr.clear_counts();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(ObsLevel::Off < ObsLevel::Metrics);
        assert!(ObsLevel::Metrics < ObsLevel::Events);
        assert!(ObsLevel::Events < ObsLevel::Full);
    }

    #[test]
    fn off_recorder_drops_everything() {
        let mut r = Recorder::new(ObsLevel::Off);
        r.emit(Event::RegsCleared { cycle: 0, count: 8 });
        r.emit_fine(Event::InstrRetired {
            cycle: 0,
            ip: 0,
            word: 0,
            cost: 1,
        });
        r.charge(0x100, 5);
        assert_eq!(r.ring.len(), 0);
        assert!(r.metrics.snapshot().counters.is_empty());
    }

    #[test]
    fn events_level_skips_firehose() {
        let mut r = Recorder::new(ObsLevel::Events);
        r.emit(Event::RegsCleared { cycle: 1, count: 8 });
        r.emit_fine(Event::InstrRetired {
            cycle: 1,
            ip: 0,
            word: 0,
            cost: 1,
        });
        assert_eq!(r.ring.len(), 1);
    }
}
