//! The metrics registry: named counters and cycle histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json;

/// A power-of-two-bucketed histogram of cycle (or other u64) samples.
///
/// Bucket `i` counts samples whose value has `i` significant bits, i.e.
/// bucket 0 holds the value 0, bucket 1 holds 1, bucket 2 holds 2–3,
/// bucket 3 holds 4–7, and so on. Exact count/sum/min/max are kept, so
/// means are precise even though quantiles are bucket-resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Summarizes the histogram.
    pub fn summary(&self) -> HistogramSummary {
        let mut nonzero = Vec::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                nonzero.push((lo, c));
            }
        }
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            buckets: nonzero,
        }
    }
}

/// A snapshot view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Exact mean (0 if empty).
    pub mean: f64,
    /// `(bucket_lower_bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// Named counters and histograms.
///
/// Names are dotted paths (`mpu.checks`, `exc.entry_cycles`); the
/// registry is a plain map so instrumentation sites never pre-register.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds 1 to counter `name`.
    #[inline]
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Overwrites counter `name` with an absolute value (used when a
    /// component keeps its own counter and the registry mirrors it).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Drops all metrics.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Takes a serializable snapshot.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            attribution: Vec::new(),
        }
    }
}

/// A point-in-time metrics snapshot, serializable to JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-domain cycle attribution `(domain, cycles)`, filled in by the
    /// machine-level collector (empty when attribution was off).
    pub attribution: Vec<(String, u64)>,
}

impl MetricsReport {
    /// Total attributed cycles.
    pub fn attributed_cycles(&self) -> u64 {
        self.attribution.iter().map(|(_, c)| c).sum()
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[",
                h.count, h.sum, h.min, h.max, h.mean
            );
            for (j, (lo, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"attribution\":{");
        for (i, (name, cycles)) in self.attribution.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{cycles}");
        }
        out.push_str("}}");
        out
    }

    /// Renders a compact human-readable table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.attribution.is_empty() {
            out.push_str("cycle attribution:\n");
            let total = self.attributed_cycles().max(1);
            for (name, cycles) in &self.attribution {
                let _ = writeln!(
                    out,
                    "  {name:<24} {cycles:>12}  ({:.1}%)",
                    *cycles as f64 / total as f64 * 100.0
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<32} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<32} n={} min={} mean={:.1} max={}",
                    h.count, h.min, h.mean, h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::default();
        m.inc("a");
        m.add("a", 4);
        m.set("b", 7);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 7);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 110);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        // Buckets: 0 -> [0], 1 -> [1], 2 -> [2,3], 4 -> [4], 64 -> [100].
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (4, 1), (64, 1)]);
    }

    #[test]
    fn report_json_parses_back() {
        let mut m = MetricsRegistry::default();
        m.add("mpu.checks", 42);
        m.observe("exc.entry_cycles", 21);
        m.observe("exc.entry_cycles", 42);
        let mut report = m.snapshot();
        report.attribution = vec![("os".to_string(), 100), ("t0".to_string(), 50)];
        let parsed = crate::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("mpu.checks")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        assert_eq!(
            parsed
                .get("attribution")
                .unwrap()
                .get("os")
                .unwrap()
                .as_u64(),
            Some(100)
        );
        let h = parsed
            .get("histograms")
            .unwrap()
            .get("exc.entry_cycles")
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(63));
    }
}
