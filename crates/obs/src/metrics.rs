//! The metrics registry: named counters and cycle histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json;

/// A power-of-two-bucketed histogram of cycle (or other u64) samples.
///
/// Bucket `i` counts samples whose value has `i` significant bits, i.e.
/// bucket 0 holds the value 0, bucket 1 holds 1, bucket 2 holds 2–3,
/// bucket 3 holds 4–7, and so on. Exact count/sum/min/max are kept, so
/// means are precise even though quantiles are bucket-resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds `other` into `self`: bucket-wise sum with exact count/sum
    /// and combined min/max, so merging per-shard histograms loses no
    /// precision versus observing every sample into one registry.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Summarizes the histogram.
    pub fn summary(&self) -> HistogramSummary {
        let mut nonzero = Vec::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                nonzero.push((lo, c));
            }
        }
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            buckets: nonzero,
        }
    }
}

/// A snapshot view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Exact mean (0 if empty).
    pub mean: f64,
    /// `(bucket_lower_bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// Named counters and histograms.
///
/// Names are dotted paths (`mpu.checks`, `exc.entry_cycles`); the
/// registry is a plain map so instrumentation sites never pre-register.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds 1 to counter `name`.
    #[inline]
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Overwrites counter `name` with an absolute value (used when a
    /// component keeps its own counter and the registry mirrors it).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Replaces histogram `name` with an externally maintained one — the
    /// histogram analogue of [`MetricsRegistry::set`], for components
    /// that accumulate their own distribution and mirror it in on
    /// report. Idempotent, unlike repeated [`MetricsRegistry::observe`].
    pub fn set_histogram(&mut self, name: &str, hist: Histogram) {
        self.histograms.insert(name.to_string(), hist);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Sums every counter whose name starts with `prefix` (e.g. all
    /// `attest.reject.*` reason counters). Exact-name matches count too.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        sum_counter_prefix(&self.counters, prefix)
    }

    /// Drops all metrics.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge bucket-wise. This is the shard-merge primitive for the
    /// fleet engine — merging N per-device registries produces exactly
    /// the registry one device would have accumulated N trajectories
    /// into, so fleet totals still sum precisely.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// Takes a serializable snapshot.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            attribution: Vec::new(),
        }
    }
}

/// A point-in-time metrics snapshot, serializable to JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-domain cycle attribution `(domain, cycles)`, filled in by the
    /// machine-level collector (empty when attribution was off).
    pub attribution: Vec<(String, u64)>,
}

impl HistogramSummary {
    /// Deterministic bucket-resolution quantile: the lower bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`
    /// (clamped to the exact recorded `min` for the lowest bucket).
    /// Pure integer arithmetic over the fixed log2 buckets, so two
    /// histograms with equal bucket contents report identical quantiles
    /// on any host — the property the fleet observatory's latency
    /// figures rely on.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lo, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                // `min` refines the lowest bucket; later buckets start
                // above it.
                return lo.max(self.min);
            }
        }
        self.max
    }

    /// Median ([`HistogramSummary::quantile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` (the snapshot-level counterpart of
    /// [`Histogram::merge`]; bucket resolution is preserved exactly, the
    /// mean is recomputed from the exact merged count/sum).
    pub fn merge(&mut self, other: &HistogramSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for &(lo, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&lo, |&(l, _)| l) {
                Ok(i) => self.buckets[i].1 += c,
                Err(i) => self.buckets.insert(i, (lo, c)),
            }
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.mean = self.sum as f64 / self.count as f64;
    }
}

/// Sums every counter in a sorted map whose name starts with `prefix`
/// (range scan — the BTreeMap keeps prefixed families contiguous).
fn sum_counter_prefix(counters: &BTreeMap<String, u64>, prefix: &str) -> u64 {
    counters
        .range(prefix.to_string()..)
        .take_while(|(k, _)| k.starts_with(prefix))
        .map(|(_, v)| v)
        .sum()
}

impl MetricsReport {
    /// Sums every counter whose name starts with `prefix` (the
    /// snapshot-level counterpart of [`MetricsRegistry::sum_prefix`]).
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        sum_counter_prefix(&self.counters, prefix)
    }

    /// Total attributed cycles.
    pub fn attributed_cycles(&self) -> u64 {
        self.attribution.iter().map(|(_, c)| c).sum()
    }

    /// Folds another report into this one: counters add, histogram
    /// summaries merge, attribution rows sum by domain name (new domains
    /// append in `other`'s order). Merging N per-device fleet reports
    /// therefore keeps the invariant that attributed cycles sum exactly
    /// to the summed machine cycle counters.
    pub fn merge(&mut self, other: &MetricsReport) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
        for (name, cycles) in &other.attribution {
            if let Some(row) = self.attribution.iter_mut().find(|(n, _)| n == name) {
                row.1 += cycles;
            } else {
                self.attribution.push((name.clone(), *cycles));
            }
        }
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[",
                h.count, h.sum, h.min, h.max, h.mean
            );
            for (j, (lo, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"attribution\":{");
        for (i, (name, cycles)) in self.attribution.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{cycles}");
        }
        out.push_str("}}");
        out
    }

    /// Renders a compact human-readable table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.attribution.is_empty() {
            out.push_str("cycle attribution:\n");
            let total = self.attributed_cycles().max(1);
            for (name, cycles) in &self.attribution {
                let _ = writeln!(
                    out,
                    "  {name:<24} {cycles:>12}  ({:.1}%)",
                    *cycles as f64 / total as f64 * 100.0
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<32} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<32} n={} min={} mean={:.1} max={}",
                    h.count, h.min, h.mean, h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::default();
        m.inc("a");
        m.add("a", 4);
        m.set("b", 7);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 7);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn sum_prefix_covers_a_counter_family() {
        let mut m = MetricsRegistry::default();
        m.add("attest.reject.bad_measurement", 3);
        m.add("attest.reject.bad_tag", 4);
        m.add("attest.reject.timeout", 5);
        m.add("attest.ok", 100);
        m.add("attesz", 1); // lexicographically after the family
        assert_eq!(m.sum_prefix("attest.reject."), 12);
        assert_eq!(m.sum_prefix("attest.reject.bad_tag"), 4, "exact match");
        assert_eq!(m.sum_prefix("nope."), 0);
        assert_eq!(m.snapshot().sum_prefix("attest.reject."), 12);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 110);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        // Buckets: 0 -> [0], 1 -> [1], 2 -> [2,3], 4 -> [4], 64 -> [100].
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (4, 1), (64, 1)]);
    }

    #[test]
    fn histogram_merge_equals_joint_observation() {
        let (a_samples, b_samples) = ([0u64, 1, 7, 300], [2u64, 7, 1 << 40]);
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut joint = Histogram::default();
        for v in a_samples {
            a.observe(v);
            joint.observe(v);
        }
        for v in b_samples {
            b.observe(v);
            joint.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
        assert_eq!(a.summary(), joint.summary());
    }

    #[test]
    fn registry_merge_sums_counters_and_histograms() {
        let mut a = MetricsRegistry::default();
        let mut b = MetricsRegistry::default();
        a.add("x", 3);
        b.add("x", 4);
        b.add("only_b", 1);
        a.observe("h", 5);
        b.observe("h", 9);
        b.observe("h2", 2);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 14);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
    }

    #[test]
    fn report_merge_sums_attribution_by_name() {
        let mut a = MetricsRegistry::default().snapshot();
        a.attribution = vec![("os".to_string(), 10), ("t0".to_string(), 5)];
        let mut b = MetricsRegistry::default().snapshot();
        b.attribution = vec![("t0".to_string(), 7), ("t9".to_string(), 1)];
        a.merge(&b);
        assert_eq!(
            a.attribution,
            vec![
                ("os".to_string(), 10),
                ("t0".to_string(), 12),
                ("t9".to_string(), 1)
            ]
        );
        assert_eq!(a.attributed_cycles(), 23);
    }

    #[test]
    fn quantiles_are_bucket_resolution_and_deterministic() {
        let mut h = Histogram::default();
        // 10 samples: 1x1, 5x3, 3x6, 1x40.
        h.observe(1);
        for _ in 0..5 {
            h.observe(3);
        }
        for _ in 0..3 {
            h.observe(6);
        }
        h.observe(40);
        let s = h.summary();
        // Ranks: p50 -> rank 5 (bucket lo 2, clamped by min=1? no: min
        // is 1, bucket lo 2 > min) -> 2; p90 -> rank 9 -> bucket [4,8)
        // -> 4; p99 -> rank 10 -> bucket [32,64) -> 32.
        assert_eq!(s.p50(), 2);
        assert_eq!(s.p90(), 4);
        assert_eq!(s.p99(), 32);
        assert_eq!(s.quantile(0.0), 1, "q=0 clamps to rank 1, min-refined");
        assert_eq!(s.quantile(1.0), 32);
        assert_eq!(s.max, 40);
        assert_eq!(Histogram::default().summary().p50(), 0, "empty: 0");
    }

    #[test]
    fn summary_merge_interleaves_buckets() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.observe(1);
        a.observe(64);
        b.observe(4);
        b.observe(64);
        let mut sa = a.summary();
        sa.merge(&b.summary());
        a.merge(&b);
        assert_eq!(sa, a.summary());
    }

    #[test]
    fn report_json_parses_back() {
        let mut m = MetricsRegistry::default();
        m.add("mpu.checks", 42);
        m.observe("exc.entry_cycles", 21);
        m.observe("exc.entry_cycles", 42);
        let mut report = m.snapshot();
        report.attribution = vec![("os".to_string(), 100), ("t0".to_string(), 50)];
        let parsed = crate::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("mpu.checks")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        assert_eq!(
            parsed
                .get("attribution")
                .unwrap()
                .get("os")
                .unwrap()
                .as_u64(),
            Some(100)
        );
        let h = parsed
            .get("histograms")
            .unwrap()
            .get("exc.entry_cycles")
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(63));
    }
}
