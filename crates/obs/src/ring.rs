//! The bounded event ring.

use std::collections::VecDeque;

use crate::event::Event;

/// A bounded FIFO of events: once full, the oldest event is dropped for
/// each new one, and the drop is counted so sinks can report truncation
/// instead of silently pretending the trace is complete.
#[derive(Debug, Default)]
pub struct EventRing {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `cap` events (`cap = 0` drops all).
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            buf: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    /// The capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Re-sizes the ring, evicting oldest events if shrinking.
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap;
        while self.buf.len() > cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
    }

    /// Appends an event, evicting the oldest if at capacity.
    #[inline]
    pub fn push(&mut self, event: Event) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted or rejected since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Discards all retained events and resets the drop counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

impl<'a> IntoIterator for &'a EventRing {
    type Item = &'a Event;
    type IntoIter = std::collections::vec_deque::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event::RegsCleared { cycle, count: 8 }
    }

    #[test]
    fn push_within_capacity_keeps_order() {
        let mut r = EventRing::new(4);
        for c in 0..3 {
            r.push(ev(c));
        }
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [0, 1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut r = EventRing::new(3);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [7, 8, 9]);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut r = EventRing::new(8);
        for c in 0..8 {
            r.push(ev(c));
        }
        r.set_capacity(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [6, 7]);
    }
}
