//! The bounded event ring.
//!
//! Implemented as a flat circular buffer rather than a `VecDeque`: at the
//! `Full` capture level the firehose pushes one `InstrRetired` plus one
//! `MpuCheck` per simulated instruction, and the steady state (ring at
//! capacity) previously paid a `pop_front` + `push_back` pair per event.
//! The slab form makes the steady-state push a single indexed overwrite,
//! and backing storage is reserved in one batch the first time the ring
//! fills a chunk instead of growing per instruction.

use crate::event::Event;

/// How many slots are reserved at once while the buffer grows toward
/// capacity (batched reservation: one allocation per chunk instead of
/// amortized doubling in the per-instruction path).
const RESERVE_CHUNK: usize = 4096;

/// A bounded FIFO of events: once full, the oldest event is dropped for
/// each new one, and the drop is counted so sinks can report truncation
/// instead of silently pretending the trace is complete.
#[derive(Debug, Default, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    /// Index of the oldest retained event (only meaningful once the
    /// buffer has reached capacity and wrapped).
    start: usize,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `cap` events (`cap = 0` drops all).
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            buf: Vec::new(),
            start: 0,
            cap,
            dropped: 0,
        }
    }

    /// The capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Re-sizes the ring, evicting oldest events if shrinking.
    pub fn set_capacity(&mut self, cap: usize) {
        if self.buf.len() > cap {
            let evict = self.buf.len() - cap;
            // Linearize (oldest first), drop the front, rebuild.
            let mut linear: Vec<Event> = self.iter().cloned().collect();
            linear.drain(..evict);
            self.buf = linear;
            self.start = 0;
            self.dropped += evict as u64;
        }
        self.cap = cap;
    }

    /// Appends an event, evicting the oldest if at capacity.
    #[inline]
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            if self.buf.len() == self.buf.capacity() {
                // Batched reservation: one chunk, not per-event growth.
                let want = RESERVE_CHUNK.min(self.cap - self.buf.len());
                self.buf.reserve(want);
            }
            self.buf.push(event);
            return;
        }
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        // Steady state: overwrite the oldest slot in place.
        self.buf[self.start] = event;
        self.start += 1;
        if self.start == self.cap {
            self.start = 0;
        }
        self.dropped += 1;
    }

    /// Appends two events as one batch — the firehose's per-retirement
    /// pair (`MpuCheck` + `InstrRetired` from the superblock loop). Both
    /// hot regimes pay one capacity decision for the pair instead of
    /// two: the growth phase bulk-pushes, the steady state does two
    /// in-place overwrites. Ordering is identical to `push(a); push(b)`.
    #[inline]
    pub fn push2(&mut self, a: Event, b: Event) {
        if self.buf.len() + 2 <= self.cap {
            if self.buf.len() + 2 > self.buf.capacity() {
                let want = RESERVE_CHUNK.min(self.cap - self.buf.len());
                self.buf.reserve(want);
            }
            self.buf.push(a);
            self.buf.push(b);
            return;
        }
        if self.buf.len() == self.cap && self.cap >= 2 {
            self.buf[self.start] = a;
            self.start += 1;
            if self.start == self.cap {
                self.start = 0;
            }
            self.buf[self.start] = b;
            self.start += 1;
            if self.start == self.cap {
                self.start = 0;
            }
            self.dropped += 2;
            return;
        }
        self.push(a);
        self.push(b);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted or rejected since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.start..]
            .iter()
            .chain(self.buf[..self.start].iter())
    }

    /// Discards all retained events and resets the drop counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event::RegsCleared { cycle, count: 8 }
    }

    #[test]
    fn push_within_capacity_keeps_order() {
        let mut r = EventRing::new(4);
        for c in 0..3 {
            r.push(ev(c));
        }
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [0, 1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut r = EventRing::new(3);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [7, 8, 9]);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut r = EventRing::new(8);
        for c in 0..8 {
            r.push(ev(c));
        }
        r.set_capacity(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [6, 7]);
    }

    #[test]
    fn shrinking_a_wrapped_ring_keeps_newest() {
        let mut r = EventRing::new(4);
        for c in 0..7 {
            r.push(ev(c)); // wrapped: retains 3,4,5,6 with start != 0
        }
        r.set_capacity(2);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [5, 6]);
        assert_eq!(r.dropped(), 5);
    }

    #[test]
    fn push2_matches_sequential_pushes() {
        for cap in [0usize, 1, 2, 3, 4, 7] {
            let mut paired = EventRing::new(cap);
            let mut sequential = EventRing::new(cap);
            for c in 0..6 {
                paired.push2(ev(2 * c), ev(2 * c + 1));
                sequential.push(ev(2 * c));
                sequential.push(ev(2 * c + 1));
            }
            let p: Vec<u64> = paired.iter().map(|e| e.cycle()).collect();
            let s: Vec<u64> = sequential.iter().map(|e| e.cycle()).collect();
            assert_eq!(p, s, "cap {cap}");
            assert_eq!(paired.dropped(), sequential.dropped(), "cap {cap}");
        }
    }

    #[test]
    fn clone_preserves_order_across_wrap() {
        let mut r = EventRing::new(3);
        for c in 0..5 {
            r.push(ev(c));
        }
        let c = r.clone();
        let cycles: Vec<u64> = c.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [2, 3, 4]);
    }
}
