//! Event sinks: render a recorded event stream as human-readable text,
//! JSON Lines (with a parser for round-tripping), or a Chrome
//! `trace_event` file loadable in `chrome://tracing` / Perfetto.

use std::fmt::Write as _;

use crate::event::{AccessClass, Event, ExcFrame, IpcKind, LoaderStage, SwitchEdge, Verdict};
use crate::json::{self, Json};

// --- text ---------------------------------------------------------------

/// Renders events as one human-readable line each, oldest first.
/// Instruction words are disassembled via `trustlite-isa`.
pub fn text<'a>(events: impl IntoIterator<Item = &'a Event>) -> String {
    let mut out = String::new();
    for e in events {
        let _ = match e {
            Event::InstrRetired {
                cycle,
                ip,
                word,
                cost,
            } => writeln!(
                out,
                "[{cycle:>10}] instr      {ip:08x}  {:<28} (+{cost})",
                trustlite_isa::disassemble(*word)
            ),
            Event::MpuCheck {
                cycle,
                subject,
                addr,
                kind,
                verdict,
            } => writeln!(
                out,
                "[{cycle:>10}] mpu-check  subject={subject:08x} addr={addr:08x} {kind} -> {verdict}"
            ),
            Event::MpuFault {
                cycle,
                ip,
                addr,
                kind,
            } => writeln!(
                out,
                "[{cycle:>10}] MPU-FAULT  ip={ip:08x} addr={addr:08x} {kind}"
            ),
            Event::ExceptionEnter { cycle, frame } => {
                let ExcFrame {
                    vector,
                    trustlet,
                    interrupted_ip,
                    saved_sp,
                    cycles,
                } = &**frame;
                match trustlet {
                    Some(t) => writeln!(
                        out,
                        "[{cycle:>10}] exc-enter  vec={vector} trustlet={t} ip={interrupted_ip:08x} saved_sp={saved_sp:08x} (+{cycles})"
                    ),
                    None => writeln!(
                        out,
                        "[{cycle:>10}] exc-enter  vec={vector} ip={interrupted_ip:08x} (+{cycles})"
                    ),
                }
            }
            Event::ExceptionExit {
                cycle,
                resumed_ip,
                cycles,
            } => writeln!(
                out,
                "[{cycle:>10}] exc-exit   resume={resumed_ip:08x} (+{cycles})"
            ),
            Event::RegsCleared { cycle, count } => {
                writeln!(out, "[{cycle:>10}] regs-clear {count} registers")
            }
            Event::LoaderPhase { start, phase, ops } => {
                writeln!(out, "[{start:>10}] loader     {phase} ({ops} ops)")
            }
            Event::ContextSwitch { cycle, edge, ip } => {
                writeln!(
                    out,
                    "[{cycle:>10}] switch     {} -> {} at {ip:08x}",
                    edge.from, edge.to
                )
            }
            Event::IpcSend {
                cycle,
                from,
                to,
                kind,
            } => {
                writeln!(out, "[{cycle:>10}] ipc-send   {from} -> {to} [{kind}]")
            }
            Event::IpcRecv {
                cycle,
                from,
                to,
                kind,
            } => {
                writeln!(out, "[{cycle:>10}] ipc-recv   {from} -> {to} [{kind}]")
            }
        };
    }
    out
}

// --- JSONL --------------------------------------------------------------

/// Renders one event as a single-line JSON object (no trailing newline).
pub fn event_to_json(e: &Event) -> String {
    let mut o = String::from("{\"kind\":\"");
    o.push_str(e.kind_name());
    o.push('"');
    match e {
        Event::InstrRetired {
            cycle,
            ip,
            word,
            cost,
        } => {
            let _ = write!(
                o,
                ",\"cycle\":{cycle},\"ip\":{ip},\"word\":{word},\"cost\":{cost}"
            );
        }
        Event::MpuCheck {
            cycle,
            subject,
            addr,
            kind,
            verdict,
        } => {
            let _ = write!(
                o,
                ",\"cycle\":{cycle},\"subject\":{subject},\"addr\":{addr},\"access\":\"{}\",\"verdict\":\"{}\"",
                kind.name(),
                verdict.name()
            );
        }
        Event::MpuFault {
            cycle,
            ip,
            addr,
            kind,
        } => {
            let _ = write!(
                o,
                ",\"cycle\":{cycle},\"ip\":{ip},\"addr\":{addr},\"access\":\"{}\"",
                kind.name()
            );
        }
        Event::ExceptionEnter { cycle, frame } => {
            let ExcFrame {
                vector,
                trustlet,
                interrupted_ip,
                saved_sp,
                cycles,
            } = &**frame;
            let _ = write!(o, ",\"cycle\":{cycle},\"vector\":{vector},\"trustlet\":");
            match trustlet {
                Some(t) => {
                    let _ = write!(o, "{t}");
                }
                None => o.push_str("null"),
            }
            let _ = write!(
                o,
                ",\"interrupted_ip\":{interrupted_ip},\"saved_sp\":{saved_sp},\"cycles\":{cycles}"
            );
        }
        Event::ExceptionExit {
            cycle,
            resumed_ip,
            cycles,
        } => {
            let _ = write!(
                o,
                ",\"cycle\":{cycle},\"resumed_ip\":{resumed_ip},\"cycles\":{cycles}"
            );
        }
        Event::RegsCleared { cycle, count } => {
            let _ = write!(o, ",\"cycle\":{cycle},\"count\":{count}");
        }
        Event::LoaderPhase { start, phase, ops } => {
            let _ = write!(
                o,
                ",\"start\":{start},\"phase\":\"{}\",\"ops\":{ops}",
                phase.name()
            );
        }
        Event::ContextSwitch { cycle, edge, ip } => {
            let _ = write!(o, ",\"cycle\":{cycle},\"from\":");
            json::write_str(&mut o, &edge.from);
            o.push_str(",\"to\":");
            json::write_str(&mut o, &edge.to);
            let _ = write!(o, ",\"ip\":{ip}");
        }
        Event::IpcSend {
            cycle,
            from,
            to,
            kind,
        }
        | Event::IpcRecv {
            cycle,
            from,
            to,
            kind,
        } => {
            let _ = write!(
                o,
                ",\"cycle\":{cycle},\"from\":{from},\"to\":{to},\"msg\":\"{}\"",
                kind.name()
            );
        }
    }
    o.push('}');
    o
}

/// Renders events as JSON Lines, one event per line.
pub fn jsonl<'a>(events: impl IntoIterator<Item = &'a Event>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn field_u32(v: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(v, key)?).map_err(|_| format!("field `{key}` out of u32 range"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn field_access(v: &Json, key: &str) -> Result<AccessClass, String> {
    AccessClass::from_name(&field_str(v, key)?).ok_or_else(|| "bad access class".to_string())
}

fn field_loader_stage(v: &Json) -> Result<LoaderStage, String> {
    let s = field_str(v, "phase")?;
    LoaderStage::from_name(&s).ok_or_else(|| format!("unknown loader phase `{s}`"))
}

fn field_ipc_kind(v: &Json) -> Result<IpcKind, String> {
    let s = field_str(v, "msg")?;
    IpcKind::from_name(&s).ok_or_else(|| format!("unknown ipc message kind `{s}`"))
}

/// Parses one JSONL line produced by [`event_to_json`] back into an
/// [`Event`].
pub fn parse_jsonl_line(line: &str) -> Result<Event, String> {
    let v = json::parse(line.trim()).map_err(|e| e.to_string())?;
    event_from_json(&v)
}

/// Parses an [`Event`] from an already-parsed JSON object (used for the
/// event arrays nested inside flight-recorder dumps).
pub fn event_from_json(v: &Json) -> Result<Event, String> {
    let kind = field_str(v, "kind")?;
    match kind.as_str() {
        "instr_retired" => Ok(Event::InstrRetired {
            cycle: field_u64(v, "cycle")?,
            ip: field_u32(v, "ip")?,
            word: field_u32(v, "word")?,
            cost: field_u64(v, "cost")?,
        }),
        "mpu_check" => Ok(Event::MpuCheck {
            cycle: field_u64(v, "cycle")?,
            subject: field_u32(v, "subject")?,
            addr: field_u32(v, "addr")?,
            kind: field_access(v, "access")?,
            verdict: Verdict::from_name(&field_str(v, "verdict")?)
                .ok_or_else(|| "bad verdict".to_string())?,
        }),
        "mpu_fault" => Ok(Event::MpuFault {
            cycle: field_u64(v, "cycle")?,
            ip: field_u32(v, "ip")?,
            addr: field_u32(v, "addr")?,
            kind: field_access(v, "access")?,
        }),
        "exception_enter" => Ok(Event::ExceptionEnter {
            cycle: field_u64(v, "cycle")?,
            frame: Box::new(ExcFrame {
                vector: u8::try_from(field_u64(v, "vector")?)
                    .map_err(|_| "vector out of range".to_string())?,
                trustlet: match v.get("trustlet") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(
                        j.as_u64()
                            .and_then(|t| u32::try_from(t).ok())
                            .ok_or_else(|| "bad trustlet field".to_string())?,
                    ),
                },
                interrupted_ip: field_u32(v, "interrupted_ip")?,
                saved_sp: field_u32(v, "saved_sp")?,
                cycles: field_u64(v, "cycles")?,
            }),
        }),
        "exception_exit" => Ok(Event::ExceptionExit {
            cycle: field_u64(v, "cycle")?,
            resumed_ip: field_u32(v, "resumed_ip")?,
            cycles: field_u64(v, "cycles")?,
        }),
        "regs_cleared" => Ok(Event::RegsCleared {
            cycle: field_u64(v, "cycle")?,
            count: field_u32(v, "count")?,
        }),
        "loader_phase" => Ok(Event::LoaderPhase {
            start: field_u64(v, "start")?,
            phase: field_loader_stage(v)?,
            ops: field_u64(v, "ops")?,
        }),
        "context_switch" => Ok(Event::ContextSwitch {
            cycle: field_u64(v, "cycle")?,
            edge: Box::new(SwitchEdge {
                from: field_str(v, "from")?,
                to: field_str(v, "to")?,
            }),
            ip: field_u32(v, "ip")?,
        }),
        "ipc_send" => Ok(Event::IpcSend {
            cycle: field_u64(v, "cycle")?,
            from: field_u32(v, "from")?,
            to: field_u32(v, "to")?,
            kind: field_ipc_kind(v)?,
        }),
        "ipc_recv" => Ok(Event::IpcRecv {
            cycle: field_u64(v, "cycle")?,
            from: field_u32(v, "from")?,
            to: field_u32(v, "to")?,
            kind: field_ipc_kind(v)?,
        }),
        other => Err(format!("unknown event kind `{other}`")),
    }
}

/// Parses a full JSONL document back into events, failing on the first
/// malformed line.
pub fn parse_jsonl(doc: &str) -> Result<Vec<Event>, String> {
    doc.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| parse_jsonl_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

// --- Chrome trace_event -------------------------------------------------

const PID: u32 = 1;
const TID_DOMAINS: u32 = 1;
const TID_EXC: u32 = 2;
const TID_LOADER: u32 = 3;
const TID_MARKS: u32 = 4;

fn chrome_slice(out: &mut String, name: &str, tid: u32, ts: u64, dur: u64, args: &str) {
    out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
    let _ = write!(out, "{tid},\"ts\":{ts},\"dur\":{},\"name\":", dur.max(1));
    json::write_str(out, name);
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        out.push_str(args);
        out.push('}');
    }
    out.push_str("},");
}

fn chrome_instant(out: &mut String, name: &str, ts: u64, args: &str) {
    out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
    let _ = write!(out, "{TID_MARKS},\"ts\":{ts},\"name\":");
    json::write_str(out, name);
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        out.push_str(args);
        out.push('}');
    }
    out.push_str("},");
}

/// Renders events as a Chrome `trace_event` JSON document (1 simulated
/// cycle = 1 µs). Domain occupancy, exceptions and loader phases become
/// duration slices; faults and IPC traffic become instant markers.
/// `end_cycle` closes the final domain slice (pass the machine's cycle
/// counter).
pub fn chrome<'a>(events: impl IntoIterator<Item = &'a Event>, end_cycle: u64) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (tid, name) in [
        (TID_DOMAINS, "domains"),
        (TID_EXC, "exceptions"),
        (TID_LOADER, "loader"),
        (TID_MARKS, "events"),
    ] {
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}},"
        );
    }
    // Open domain slice: (name, start cycle).
    let mut open: Option<(String, u64)> = None;
    let mut last_cycle = 0u64;
    for e in events {
        last_cycle = last_cycle.max(e.cycle());
        match e {
            Event::ContextSwitch { cycle, edge, .. } => {
                let (name, start) = open.take().unwrap_or_else(|| (edge.from.clone(), 0));
                chrome_slice(&mut out, &name, TID_DOMAINS, start, cycle - start, "");
                open = Some((edge.to.clone(), *cycle));
            }
            Event::ExceptionEnter { cycle, frame } => {
                let vector = frame.vector;
                let mut args = format!("\"vector\":{vector}");
                if let Some(t) = frame.trustlet {
                    let _ = write!(args, ",\"trustlet\":{t}");
                }
                chrome_slice(
                    &mut out,
                    &format!("exc vec={vector}"),
                    TID_EXC,
                    *cycle,
                    frame.cycles,
                    &args,
                );
            }
            Event::ExceptionExit {
                cycle,
                resumed_ip,
                cycles,
            } => {
                chrome_slice(
                    &mut out,
                    "iret",
                    TID_EXC,
                    *cycle,
                    *cycles,
                    &format!("\"resumed_ip\":{resumed_ip}"),
                );
            }
            Event::LoaderPhase { start, phase, ops } => {
                chrome_slice(
                    &mut out,
                    phase.name(),
                    TID_LOADER,
                    *start,
                    (*ops).max(1),
                    &format!("\"ops\":{ops}"),
                );
            }
            Event::MpuFault {
                cycle,
                ip,
                addr,
                kind,
            } => {
                chrome_instant(
                    &mut out,
                    "mpu fault",
                    *cycle,
                    &format!("\"ip\":{ip},\"addr\":{addr},\"access\":\"{}\"", kind.name()),
                );
            }
            Event::IpcSend {
                cycle,
                from,
                to,
                kind,
            } => {
                chrome_instant(
                    &mut out,
                    &format!("ipc send [{kind}]"),
                    *cycle,
                    &format!("\"from\":{from},\"to\":{to}"),
                );
            }
            Event::IpcRecv {
                cycle,
                from,
                to,
                kind,
            } => {
                chrome_instant(
                    &mut out,
                    &format!("ipc recv [{kind}]"),
                    *cycle,
                    &format!("\"from\":{from},\"to\":{to}"),
                );
            }
            Event::RegsCleared { cycle, count } => {
                chrome_instant(
                    &mut out,
                    "regs cleared",
                    *cycle,
                    &format!("\"count\":{count}"),
                );
            }
            // The firehose variants would swamp the viewer; they are
            // available via the text/JSONL sinks instead.
            Event::InstrRetired { .. } | Event::MpuCheck { .. } => {}
        }
    }
    if let Some((name, start)) = open {
        let end = end_cycle.max(last_cycle).max(start);
        chrome_slice(&mut out, &name, TID_DOMAINS, start, end - start, "");
    }
    if out.ends_with(',') {
        out.pop();
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::InstrRetired {
                cycle: 0,
                ip: 0x1000,
                word: 0,
                cost: 1,
            },
            Event::MpuCheck {
                cycle: 1,
                subject: 0x1000,
                addr: 0x8000,
                kind: AccessClass::Write,
                verdict: Verdict::Allow,
            },
            Event::MpuFault {
                cycle: 2,
                ip: 0x1004,
                addr: 0x9000,
                kind: AccessClass::Read,
            },
            Event::ExceptionEnter {
                cycle: 3,
                frame: Box::new(ExcFrame {
                    vector: 16,
                    trustlet: Some(1),
                    interrupted_ip: 0x4000,
                    saved_sp: 0x5000,
                    cycles: 21,
                }),
            },
            Event::ExceptionEnter {
                cycle: 30,
                frame: Box::new(ExcFrame {
                    vector: 8,
                    trustlet: None,
                    interrupted_ip: 0x1008,
                    saved_sp: 0,
                    cycles: 21,
                }),
            },
            Event::ExceptionExit {
                cycle: 60,
                resumed_ip: 0x1008,
                cycles: 8,
            },
            Event::RegsCleared {
                cycle: 61,
                count: 8,
            },
            Event::LoaderPhase {
                start: 0,
                phase: LoaderStage::CopyImages,
                ops: 12,
            },
            Event::ContextSwitch {
                cycle: 70,
                edge: Box::new(SwitchEdge {
                    from: "os".to_string(),
                    to: "t0".to_string(),
                }),
                ip: 0x4000,
            },
            Event::IpcSend {
                cycle: 71,
                from: 1,
                to: 2,
                kind: IpcKind::Syn,
            },
            Event::IpcRecv {
                cycle: 72,
                from: 1,
                to: 2,
                kind: IpcKind::Syn,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let events = sample_events();
        let doc = jsonl(&events);
        assert_eq!(doc.lines().count(), events.len());
        let parsed = parse_jsonl(&doc).expect("round-trip parses");
        assert_eq!(parsed, events);
    }

    #[test]
    fn text_sink_mentions_each_event() {
        let rendered = text(&sample_events());
        for needle in [
            "instr",
            "mpu-check",
            "MPU-FAULT",
            "exc-enter",
            "exc-exit",
            "regs-clear",
            "loader",
            "switch",
            "ipc-send",
            "ipc-recv",
        ] {
            assert!(rendered.contains(needle), "missing {needle}: {rendered}");
        }
    }

    #[test]
    fn chrome_output_is_valid_json_with_slices() {
        let doc = chrome(&sample_events(), 100);
        let v = json::parse(&doc).expect("chrome trace is valid JSON");
        let events = match v.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            other => panic!("bad traceEvents: {other:?}"),
        };
        // 4 thread-name metadata + 2 exc enters + 1 exit + 1 loader +
        // 1 fault + 2 ipc + 1 regs + 2 domain slices (switch closes
        // implicit first slice, final slice closed by end_cycle).
        assert_eq!(events.len(), 14);
        let has = |ph: &str, name: &str| {
            events.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some(ph)
                    && e.get("name").and_then(Json::as_str) == Some(name)
            })
        };
        assert!(has("X", "exc vec=16"));
        assert!(has("X", "copy_images"));
        assert!(has("X", "os"));
        assert!(has("X", "t0"));
        assert!(has("i", "mpu fault"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_jsonl_line("{\"kind\":\"nope\"}").is_err());
        assert!(parse_jsonl_line("{\"cycle\":1}").is_err());
        assert!(parse_jsonl_line("not json").is_err());
        assert!(
            parse_jsonl("{\"kind\":\"regs_cleared\",\"cycle\":1,\"count\":8}\ngarbage\n").is_err()
        );
    }
}
