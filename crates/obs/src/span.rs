//! Fleet span records: the timeline primitive of the fleet observatory.
//!
//! A [`SpanRecord`] names one interval (or instantaneous mark, when
//! `start_cycle == end_cycle`) of fleet activity: a device answering an
//! attestation challenge, a shard executing its phase-A quantum, a
//! verifier writing a device off. Spans are the wire type of the
//! `tlfleet --trace-jsonl` stream and the payload of the flight
//! recorder, so both the kind set and the JSON field names are
//! schema-stable (pinned by a regression test).
//!
//! Timeline units depend on the kind (the schema keeps one field pair
//! rather than one pair per clock):
//!
//! * **shard phases** (`fork`, `execute`, `verify`, `merge`) are
//!   host-side wall time in nanoseconds since the run started — they
//!   measure the engine, not the simulation, and are never digested;
//! * **device execution spans** (`quantum`, `crash_reset`) are in that
//!   device's simulated cycles;
//! * **attestation-fabric spans and marks** (everything else) are in
//!   fleet rounds — the only clock the verifier has.

use core::fmt;
use std::fmt::Write as _;

use crate::json::{self, Json};

/// What a [`SpanRecord`] describes. The set is closed: every variant has
/// a stable wire name and the JSONL parser rejects unknown names, so
/// growing the taxonomy is an explicit schema change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Shard phase (host clock): snapshot/fork boot of the fleet.
    Fork,
    /// Shard phase (host clock): one worker's phase-A round execution.
    Execute,
    /// Shard phase (host clock): the verifier's phase-B round boundary.
    Verify,
    /// Shard phase (host clock): final telemetry merge.
    Merge,
    /// One device executing one round's quantum (device cycles).
    Quantum,
    /// Mid-round crash and Secure Loader re-entry (device cycles; the
    /// span covers the pre-crash partial quantum).
    CrashReset,
    /// One device's superblock-path retirement progress over one round's
    /// quantum: `start_cycle`/`end_cycle` are the block-retired
    /// instruction counts before and after (deterministic, so digests
    /// stay worker- and trace-level-invariant).
    BlockExec,
    /// Challenge-to-acceptance attestation round trip (fleet rounds).
    AttestRtt,
    /// Retry backoff window scheduled after a failure (fleet rounds).
    Backoff,
    /// Mark: a challenge reached the device's inbox.
    Challenge,
    /// Mark: the device produced an attestation response.
    Respond,
    /// Mark: a fault dropped the response on the wire.
    RespDrop,
    /// Mark: a fault delayed the response (`end_cycle` is the round the
    /// response matures in).
    RespDelay,
    /// Mark: a fault flipped a bit in the response tag.
    RespCorrupt,
    /// Mark: a fault flipped a RAM bit in a trustlet region.
    BitFlip,
    /// Mark: the verifier rejected a response over its measurements.
    RejectBadMeasurement,
    /// Mark: the verifier rejected a response over its HMAC tag.
    RejectBadTag,
    /// Mark: an in-flight challenge timed out unanswered.
    RejectTimeout,
    /// Mark: retries exhausted — the device was quarantined.
    Quarantine,
}

impl SpanKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Fork => "fork",
            SpanKind::Execute => "execute",
            SpanKind::Verify => "verify",
            SpanKind::Merge => "merge",
            SpanKind::Quantum => "quantum",
            SpanKind::CrashReset => "crash_reset",
            SpanKind::BlockExec => "block_exec",
            SpanKind::AttestRtt => "attest_rtt",
            SpanKind::Backoff => "backoff",
            SpanKind::Challenge => "challenge",
            SpanKind::Respond => "respond",
            SpanKind::RespDrop => "resp_drop",
            SpanKind::RespDelay => "resp_delay",
            SpanKind::RespCorrupt => "resp_corrupt",
            SpanKind::BitFlip => "bit_flip",
            SpanKind::RejectBadMeasurement => "reject_bad_measurement",
            SpanKind::RejectBadTag => "reject_bad_tag",
            SpanKind::RejectTimeout => "reject_timeout",
            SpanKind::Quarantine => "quarantine",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<SpanKind> {
        Some(match s {
            "fork" => SpanKind::Fork,
            "execute" => SpanKind::Execute,
            "verify" => SpanKind::Verify,
            "merge" => SpanKind::Merge,
            "quantum" => SpanKind::Quantum,
            "crash_reset" => SpanKind::CrashReset,
            "block_exec" => SpanKind::BlockExec,
            "attest_rtt" => SpanKind::AttestRtt,
            "backoff" => SpanKind::Backoff,
            "challenge" => SpanKind::Challenge,
            "respond" => SpanKind::Respond,
            "resp_drop" => SpanKind::RespDrop,
            "resp_delay" => SpanKind::RespDelay,
            "resp_corrupt" => SpanKind::RespCorrupt,
            "bit_flip" => SpanKind::BitFlip,
            "reject_bad_measurement" => SpanKind::RejectBadMeasurement,
            "reject_bad_tag" => SpanKind::RejectBadTag,
            "reject_timeout" => SpanKind::RejectTimeout,
            "quarantine" => SpanKind::Quarantine,
            _ => return None,
        })
    }

    /// True for the shard-phase kinds, whose timeline is host wall time
    /// (nanoseconds) rather than simulated cycles or rounds.
    pub fn is_host_clock(self) -> bool {
        matches!(
            self,
            SpanKind::Fork | SpanKind::Execute | SpanKind::Verify | SpanKind::Merge
        )
    }

    /// Every kind, in wire order (for closed-set tests and summaries).
    pub const ALL: [SpanKind; 19] = [
        SpanKind::Fork,
        SpanKind::Execute,
        SpanKind::Verify,
        SpanKind::Merge,
        SpanKind::Quantum,
        SpanKind::CrashReset,
        SpanKind::BlockExec,
        SpanKind::AttestRtt,
        SpanKind::Backoff,
        SpanKind::Challenge,
        SpanKind::Respond,
        SpanKind::RespDrop,
        SpanKind::RespDelay,
        SpanKind::RespCorrupt,
        SpanKind::BitFlip,
        SpanKind::RejectBadMeasurement,
        SpanKind::RejectBadTag,
        SpanKind::RejectTimeout,
        SpanKind::Quarantine,
    ];
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One interval of fleet activity. `device` is `None` for shard-scope
/// spans (the shard phases); marks carry `start_cycle == end_cycle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Home shard of the device (or the shard/worker itself for phase
    /// spans). Work stealing may execute a device elsewhere; the home
    /// shard is recorded so traces are deterministic.
    pub shard: u32,
    /// Device id, or `None` for shard-scope spans.
    pub device: Option<u32>,
    /// Fleet round the span belongs to (the round it started in).
    pub round: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Interval start (see the module docs for per-kind units).
    pub start_cycle: u64,
    /// Interval end; equal to `start_cycle` for marks.
    pub end_cycle: u64,
}

impl SpanRecord {
    /// Interval length in the span's own units (0 for marks).
    pub fn duration(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Renders the span as one JSONL trace line (no trailing newline).
    /// Field names are schema-stable.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\"kind\":\"span\",\"span\":\"");
        o.push_str(self.kind.name());
        o.push_str("\",\"shard\":");
        let _ = write!(o, "{}", self.shard);
        o.push_str(",\"device\":");
        match self.device {
            Some(d) => {
                let _ = write!(o, "{d}");
            }
            None => o.push_str("null"),
        }
        let _ = write!(
            o,
            ",\"round\":{},\"start_cycle\":{},\"end_cycle\":{}}}",
            self.round, self.start_cycle, self.end_cycle
        );
        o
    }

    /// Parses a span from an already-parsed JSON object (the inverse of
    /// [`SpanRecord::to_json`]; also used for spans nested inside flight
    /// dumps).
    pub fn from_json(v: &Json) -> Result<SpanRecord, String> {
        if v.get("kind").and_then(Json::as_str) != Some("span") {
            return Err("not a span record (kind != \"span\")".to_string());
        }
        let name = v
            .get("span")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing or non-string field `span`".to_string())?;
        let kind =
            SpanKind::from_name(name).ok_or_else(|| format!("unknown span kind `{name}`"))?;
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        };
        let device = match v.get("device") {
            None => return Err("missing field `device`".to_string()),
            Some(Json::Null) => None,
            Some(j) => Some(
                j.as_u64()
                    .and_then(|d| u32::try_from(d).ok())
                    .ok_or_else(|| "bad `device` field".to_string())?,
            ),
        };
        Ok(SpanRecord {
            shard: u32::try_from(u("shard")?).map_err(|_| "`shard` out of range".to_string())?,
            device,
            round: u("round")?,
            kind,
            start_cycle: u("start_cycle")?,
            end_cycle: u("end_cycle")?,
        })
    }

    /// Parses one JSONL span line.
    pub fn parse(line: &str) -> Result<SpanRecord, String> {
        let v = json::parse(line.trim()).map_err(|e| e.to_string())?;
        SpanRecord::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip_and_are_closed() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("teleport"), None);
    }

    #[test]
    fn span_json_round_trips() {
        for (device, kind) in [
            (Some(3), SpanKind::AttestRtt),
            (None, SpanKind::Execute),
            (Some(0), SpanKind::Quarantine),
        ] {
            let s = SpanRecord {
                shard: 1,
                device,
                round: 7,
                kind,
                start_cycle: 7,
                end_cycle: 9,
            };
            assert_eq!(SpanRecord::parse(&s.to_json()).expect("parses"), s);
        }
    }

    #[test]
    fn span_stays_flight_ring_sized() {
        assert!(
            core::mem::size_of::<SpanRecord>() <= 40,
            "SpanRecord grew to {} bytes; the flight recorder keeps \
             hundreds per device",
            core::mem::size_of::<SpanRecord>()
        );
    }

    #[test]
    fn rejects_malformed_spans() {
        assert!(SpanRecord::parse("{\"kind\":\"span\"}").is_err());
        assert!(SpanRecord::parse(
            "{\"kind\":\"span\",\"span\":\"warp\",\"shard\":0,\"device\":null,\
             \"round\":0,\"start_cycle\":0,\"end_cycle\":0}"
        )
        .is_err());
        assert!(SpanRecord::parse("{\"kind\":\"hist\"}").is_err());
    }

    #[test]
    fn marks_have_zero_duration() {
        let m = SpanRecord {
            shard: 0,
            device: Some(1),
            round: 2,
            kind: SpanKind::Challenge,
            start_cycle: 2,
            end_cycle: 2,
        };
        assert_eq!(m.duration(), 0);
        assert!(!m.kind.is_host_clock());
        assert!(SpanKind::Execute.is_host_clock());
    }
}
