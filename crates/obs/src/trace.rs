//! The fleet trace stream: a JSON Lines format mixing span records,
//! deterministic histogram summaries, flight-recorder dumps, run
//! metadata and (optionally) plain device events in one file.
//!
//! Every line is one self-describing JSON object whose `kind` field
//! selects the record type:
//!
//! | `kind`      | record                                      |
//! |-------------|---------------------------------------------|
//! | `meta`      | run metadata (one line, first)              |
//! | `span`      | one [`SpanRecord`]                          |
//! | `hist`      | one named histogram with p50/p90/p99 figures |
//! | `flight`    | one [`FlightDump`] black box                |
//! | *(other)*   | a device [`Event`] (`instr_retired`, ...)   |
//!
//! The schema is stable: field names are pinned by regression tests and
//! parsers reject unknown `kind`/`span` names, so a digest regression
//! caused by a trace-format drift is loud, not silent.

use std::fmt::Write as _;

use crate::event::Event;
use crate::flight::FlightDump;
use crate::json::{self, Json};
use crate::metrics::HistogramSummary;
use crate::sink;
use crate::span::SpanRecord;

/// One named histogram rendered into (or parsed from) a trace stream.
/// Quantiles are precomputed from the deterministic log2 buckets so a
/// consumer does not need to re-derive them.
#[derive(Debug, Clone, PartialEq)]
pub struct HistLine {
    /// Histogram name (e.g. `fleet.rounds_to_detect`).
    pub name: String,
    /// The bucket summary.
    pub summary: HistogramSummary,
}

impl HistLine {
    /// Renders the histogram as one JSONL trace line (no newline).
    pub fn to_json(&self) -> String {
        let s = &self.summary;
        let mut o = String::from("{\"kind\":\"hist\",\"name\":");
        json::write_str(&mut o, &self.name);
        let _ = write!(
            o,
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            s.count,
            s.sum,
            s.min,
            s.max,
            s.p50(),
            s.p90(),
            s.p99()
        );
        for (i, (lo, c)) in s.buckets.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "[{lo},{c}]");
        }
        o.push_str("]}");
        o
    }

    /// Parses a histogram line from an already-parsed JSON object. The
    /// mean is recomputed from the exact count/sum; the p50/p90/p99
    /// fields are validated against the buckets so a hand-edited stream
    /// cannot smuggle in quantiles its buckets do not support.
    pub fn from_json(v: &Json) -> Result<HistLine, String> {
        if v.get("kind").and_then(Json::as_str) != Some("hist") {
            return Err("not a hist record (kind != \"hist\")".to_string());
        }
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        };
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing or non-string field `name`".to_string())?
            .to_string();
        let buckets = match v.get("buckets") {
            Some(Json::Arr(a)) => a
                .iter()
                .map(|pair| match pair {
                    Json::Arr(lc) if lc.len() == 2 => match (lc[0].as_u64(), lc[1].as_u64()) {
                        (Some(lo), Some(c)) => Ok((lo, c)),
                        _ => Err("non-integer bucket entry".to_string()),
                    },
                    _ => Err("bucket entries must be [lo, count] pairs".to_string()),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing or non-array field `buckets`".to_string()),
        };
        let (count, sum) = (u("count")?, u("sum")?);
        let summary = HistogramSummary {
            count,
            sum,
            min: u("min")?,
            max: u("max")?,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            buckets,
        };
        for (key, want) in [
            ("p50", summary.p50()),
            ("p90", summary.p90()),
            ("p99", summary.p99()),
        ] {
            if u(key)? != want {
                return Err(format!("field `{key}` disagrees with the buckets"));
            }
        }
        Ok(HistLine { name, summary })
    }

    /// Parses one JSONL hist line.
    pub fn parse(line: &str) -> Result<HistLine, String> {
        let v = json::parse(line.trim()).map_err(|e| e.to_string())?;
        HistLine::from_json(&v)
    }
}

/// Run metadata heading a fleet trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Device count.
    pub devices: u64,
    /// Worker-thread count.
    pub workers: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Steps per device per round.
    pub quantum: u64,
    /// The fleet seed.
    pub seed: u64,
    /// The workload name.
    pub workload: String,
    /// The trace level the stream was captured at (`spans` or `full`).
    pub trace_level: String,
    /// Whether a fault plan was active.
    pub chaos: bool,
}

impl TraceMeta {
    /// Renders the metadata as one JSONL trace line (no newline).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\"kind\":\"meta\",\"devices\":");
        let _ = write!(
            o,
            "{},\"workers\":{},\"rounds\":{},\"quantum\":{},\"seed\":{},\"workload\":",
            self.devices, self.workers, self.rounds, self.quantum, self.seed
        );
        json::write_str(&mut o, &self.workload);
        o.push_str(",\"trace_level\":");
        json::write_str(&mut o, &self.trace_level);
        let _ = write!(o, ",\"chaos\":{}}}", self.chaos);
        o
    }

    /// Parses a meta line from an already-parsed JSON object.
    pub fn from_json(v: &Json) -> Result<TraceMeta, String> {
        if v.get("kind").and_then(Json::as_str) != Some("meta") {
            return Err("not a meta record (kind != \"meta\")".to_string());
        }
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        };
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{key}`"))
        };
        Ok(TraceMeta {
            devices: u("devices")?,
            workers: u("workers")?,
            rounds: u("rounds")?,
            quantum: u("quantum")?,
            seed: u("seed")?,
            workload: s("workload")?,
            trace_level: s("trace_level")?,
            chaos: match v.get("chaos") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("missing or non-boolean field `chaos`".to_string()),
            },
        })
    }
}

/// One parsed line of a fleet trace stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// Run metadata.
    Meta(TraceMeta),
    /// A span record.
    Span(SpanRecord),
    /// A histogram summary.
    Hist(HistLine),
    /// A flight-recorder dump.
    Flight(FlightDump),
    /// A plain device event.
    Event(Event),
}

/// Parses one trace line, dispatching on its `kind` field. Unknown
/// kinds, missing required keys and malformed JSON are all errors — this
/// is the schema gate CI runs over emitted streams.
pub fn parse_trace_line(line: &str) -> Result<TraceRecord, String> {
    let v = json::parse(line.trim()).map_err(|e| e.to_string())?;
    match v.get("kind").and_then(Json::as_str) {
        Some("meta") => TraceMeta::from_json(&v).map(TraceRecord::Meta),
        Some("span") => SpanRecord::from_json(&v).map(TraceRecord::Span),
        Some("hist") => HistLine::from_json(&v).map(TraceRecord::Hist),
        Some("flight") => FlightDump::from_json(&v).map(TraceRecord::Flight),
        Some(_) => sink::event_from_json(&v).map(TraceRecord::Event),
        None => Err("missing or non-string field `kind`".to_string()),
    }
}

/// Parses a whole trace document, failing on the first malformed line.
pub fn parse_trace(doc: &str) -> Result<Vec<TraceRecord>, String> {
    doc.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| parse_trace_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::SpanKind;

    #[test]
    fn hist_line_round_trips_with_quantiles() {
        let mut m = MetricsRegistry::default();
        for v in [1u64, 2, 2, 3, 9] {
            m.observe("fleet.rounds_to_detect", v);
        }
        let snap = m.snapshot();
        let line = HistLine {
            name: "fleet.rounds_to_detect".to_string(),
            summary: snap.histograms["fleet.rounds_to_detect"].clone(),
        };
        let parsed = HistLine::parse(&line.to_json()).expect("parses");
        assert_eq!(parsed, line);
        assert_eq!(parsed.summary.p50(), line.summary.p50());
    }

    #[test]
    fn hist_line_rejects_forged_quantiles() {
        let mut m = MetricsRegistry::default();
        m.observe("h", 4);
        let line = HistLine {
            name: "h".to_string(),
            summary: m.snapshot().histograms["h"].clone(),
        };
        let forged = line.to_json().replace("\"p99\":4", "\"p99\":400");
        assert!(HistLine::parse(&forged).is_err());
    }

    #[test]
    fn meta_line_round_trips() {
        let meta = TraceMeta {
            devices: 16,
            workers: 4,
            rounds: 8,
            quantum: 10_000,
            seed: 7,
            workload: "quickstart".to_string(),
            trace_level: "spans".to_string(),
            chaos: true,
        };
        match parse_trace_line(&meta.to_json()).expect("parses") {
            TraceRecord::Meta(m) => assert_eq!(m, meta),
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn mixed_stream_parses_every_record_kind() {
        let span = SpanRecord {
            shard: 0,
            device: Some(1),
            round: 2,
            kind: SpanKind::AttestRtt,
            start_cycle: 1,
            end_cycle: 3,
        };
        let event = Event::RegsCleared { cycle: 5, count: 8 };
        let doc = format!(
            "{}\n{}\n{}\n",
            span.to_json(),
            crate::sink::event_to_json(&event),
            HistLine {
                name: "h".to_string(),
                summary: {
                    let mut m = MetricsRegistry::default();
                    m.observe("h", 2);
                    m.snapshot().histograms["h"].clone()
                },
            }
            .to_json()
        );
        let records = parse_trace(&doc).expect("mixed stream parses");
        assert!(matches!(records[0], TraceRecord::Span(_)));
        assert!(matches!(records[1], TraceRecord::Event(_)));
        assert!(matches!(records[2], TraceRecord::Hist(_)));
    }

    #[test]
    fn garbage_lines_are_named_errors() {
        assert!(parse_trace_line("{\"nokind\":1}").is_err());
        assert!(parse_trace_line("{\"kind\":\"span\",\"span\":\"nope\"}").is_err());
        assert!(parse_trace("{\"kind\":\"meta\"}\n").is_err());
    }
}
