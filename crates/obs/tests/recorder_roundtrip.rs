//! End-to-end recorder exercises: overflow accounting under a small ring
//! and lossless JSONL round-trips of a mixed event stream.

use trustlite_obs::{sink, Event, ExcFrame, IpcKind, LoaderStage, ObsLevel, Recorder, SwitchEdge};

fn mixed_stream() -> Vec<Event> {
    vec![
        Event::LoaderPhase {
            start: 0,
            phase: LoaderStage::Reset,
            ops: 1,
        },
        Event::RegsCleared {
            cycle: 10,
            count: 8,
        },
        Event::ExceptionEnter {
            cycle: 10,
            frame: Box::new(ExcFrame {
                vector: 32,
                trustlet: Some(1),
                interrupted_ip: 0x1000_0420,
                saved_sp: 0x1000_0700,
                cycles: 42,
            }),
        },
        Event::ContextSwitch {
            cycle: 52,
            edge: Box::new(SwitchEdge {
                from: "t1".into(),
                to: "os".into(),
            }),
            ip: 0x400,
        },
        Event::IpcSend {
            cycle: 60,
            from: 0xa0,
            to: 0xa1,
            kind: IpcKind::Syn,
        },
        Event::IpcRecv {
            cycle: 70,
            from: 0xa0,
            to: 0xa1,
            kind: IpcKind::Syn,
        },
        Event::ExceptionExit {
            cycle: 90,
            resumed_ip: 0x1000_0424,
            cycles: 8,
        },
    ]
}

#[test]
fn overflow_is_counted_and_surfaced() {
    let mut r = Recorder::new(ObsLevel::Events);
    r.ring.set_capacity(4);
    for e in mixed_stream() {
        r.emit(e);
    }
    assert_eq!(r.ring.len(), 4, "ring bounded at capacity");
    assert_eq!(r.ring.dropped(), 3, "evictions counted");
    // The survivors are the newest events, oldest first.
    let cycles: Vec<u64> = r.ring.iter().map(|e| e.cycle()).collect();
    assert_eq!(cycles, [52, 60, 70, 90]);
}

#[test]
fn jsonl_round_trip_preserves_every_event() {
    let events = mixed_stream();
    let doc = sink::jsonl(&events);
    assert_eq!(doc.lines().count(), events.len());
    let parsed = sink::parse_jsonl(&doc).expect("parses back");
    assert_eq!(parsed, events);
}

#[test]
fn jsonl_round_trip_through_a_recorder() {
    let mut r = Recorder::new(ObsLevel::Full);
    r.set_now(5);
    r.emit_fine(Event::InstrRetired {
        cycle: 5,
        ip: 0x40,
        word: 0x1234_5678,
        cost: 1,
    });
    for e in mixed_stream() {
        r.emit(e);
    }
    let doc = sink::jsonl(r.ring.iter());
    let parsed = sink::parse_jsonl(&doc).expect("parses back");
    let original: Vec<Event> = r.ring.iter().cloned().collect();
    assert_eq!(parsed, original);
}
