//! Trace schema pin: the exact field names of every fleet-trace record
//! kind are frozen here. Consumers (`tlstats`, the CI schema gate,
//! external tooling) parse by name, so adding, renaming or dropping a
//! field must show up as a deliberate edit to this test, never as a
//! silent drift.

use std::collections::BTreeMap;

use trustlite_obs::json::{self, Json};
use trustlite_obs::trace::{HistLine, TraceMeta};
use trustlite_obs::{Event, FlightRecorder, MetricsRegistry, SpanKind, SpanRecord};

/// Sorted key list of one rendered JSONL line.
fn keys(line: &str) -> Vec<String> {
    match json::parse(line).expect("schema sample must be valid JSON") {
        Json::Obj(m) => m.keys().cloned().collect(),
        other => panic!("trace lines are objects, got {other:?}"),
    }
}

fn sample_span() -> SpanRecord {
    SpanRecord {
        shard: 1,
        device: Some(3),
        round: 2,
        kind: SpanKind::AttestRtt,
        start_cycle: 2,
        end_cycle: 4,
    }
}

#[test]
fn span_line_fields_are_pinned() {
    assert_eq!(
        keys(&sample_span().to_json()),
        [
            "device",
            "end_cycle",
            "kind",
            "round",
            "shard",
            "span",
            "start_cycle"
        ]
    );
    // The fleet-phase shape (no device) uses the same keys: `device` is
    // an explicit null, not an absent field.
    let phase = SpanRecord {
        device: None,
        ..sample_span()
    };
    assert_eq!(keys(&phase.to_json()).len(), 7);
    assert!(phase.to_json().contains("\"device\":null"));
}

#[test]
fn hist_line_fields_are_pinned() {
    let mut m = MetricsRegistry::default();
    for v in [1u64, 3, 9] {
        m.observe("fleet.rounds_to_detect", v);
    }
    let line = HistLine {
        name: "fleet.rounds_to_detect".to_string(),
        summary: m.snapshot().histograms["fleet.rounds_to_detect"].clone(),
    };
    assert_eq!(
        keys(&line.to_json()),
        ["buckets", "count", "kind", "max", "min", "name", "p50", "p90", "p99", "sum"]
    );
}

#[test]
fn flight_line_fields_are_pinned() {
    let mut fr = FlightRecorder::new(4);
    fr.record(sample_span());
    let mut counters = BTreeMap::new();
    counters.insert("cpu.instret".to_string(), 7u64);
    let events = vec![Event::RegsCleared { cycle: 1, count: 8 }];
    let dump = fr.dump(3, 2, "quarantine(bad_tag)", events, counters);
    assert_eq!(
        keys(&dump.to_json()),
        ["counters", "device", "dropped", "events", "kind", "round", "spans", "trigger"]
    );
}

#[test]
fn meta_line_fields_are_pinned() {
    let meta = TraceMeta {
        devices: 16,
        workers: 4,
        rounds: 8,
        quantum: 10_000,
        seed: 7,
        workload: "quickstart".to_string(),
        trace_level: "spans".to_string(),
        chaos: false,
    };
    assert_eq!(
        keys(&meta.to_json()),
        [
            "chaos",
            "devices",
            "kind",
            "quantum",
            "rounds",
            "seed",
            "trace_level",
            "workers",
            "workload"
        ]
    );
}

#[test]
fn span_wire_names_are_pinned() {
    let names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(
        names,
        [
            "fork",
            "execute",
            "verify",
            "merge",
            "quantum",
            "crash_reset",
            "block_exec",
            "attest_rtt",
            "backoff",
            "challenge",
            "respond",
            "resp_drop",
            "resp_delay",
            "resp_corrupt",
            "bit_flip",
            "reject_bad_measurement",
            "reject_bad_tag",
            "reject_timeout",
            "quarantine",
        ]
    );
    for kind in SpanKind::ALL {
        assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
    }
}
