//! A malicious-OS attack harness.
//!
//! The paper's adversary "has full control over the untrusted OS and
//! tasks" (Section 2.2). This module generates an OS whose only purpose
//! is to attack: it runs a battery of forbidden accesses against a victim
//! trustlet and the platform's protected structures, recording for each
//! attempt whether the EA-MPU blocked it. The result vector lands in the
//! OS data region where the host reads it out — a self-contained
//! penetration test that examples, tests and future policy changes can
//! re-run unchanged.
//!
//! OS data layout: `+0` current attack index, `+4 + 4*i` result of attack
//! `i` (1 = blocked by a protection fault, 0 = the access *succeeded*,
//! i.e. a security breach).

use trustlite::layout;
use trustlite::platform::OsProgram;
use trustlite::spec::TrustletPlan;
use trustlite_cpu::vectors;
use trustlite_isa::Reg;
use trustlite_mem::map;

/// The attack battery, in execution order.
pub const ATTACKS: &[&str] = &[
    "read trustlet data",
    "write trustlet data",
    "write trustlet code",
    "execute trustlet code body",
    "reprogram an MPU rule register",
    "overwrite a Trustlet Table row",
    "overwrite a measurement row",
    "read the key store",
];

/// The IDT wiring the generated OS expects.
pub const ATTACK_IDT: &[(u8, &str)] = &[(vectors::VEC_MPU_FAULT, "blocked")];

/// Emits the attack OS against `victim`. After the run, read the results
/// with [`read_results`].
pub fn build_attack_os(os: &mut OsProgram, victim: &TrustletPlan) {
    let data = os.data_base;
    let stack_top = os.stack_top;
    let a = &mut os.asm;

    a.label("main");
    a.li(Reg::Sp, stack_top);
    a.li(Reg::R1, data);
    a.li(Reg::R2, 0);
    a.sw(Reg::R1, 0, Reg::R2); // index = 0
    a.jmp("dispatch");

    // The fault handler: the current attack was blocked. Record and move
    // on. (Faults leave the OS stack with a fresh frame each time; reset
    // the stack pointer rather than unwinding.)
    a.label("blocked");
    a.li(Reg::Sp, stack_top);
    a.li(Reg::R1, data);
    a.lw(Reg::R2, Reg::R1, 0);
    a.shli(Reg::R3, Reg::R2, 2);
    a.add(Reg::R3, Reg::R3, Reg::R1);
    a.li(Reg::R4, 1);
    a.sw(Reg::R3, 4, Reg::R4); // results[i] = 1 (blocked)
    a.jmp("advance");

    // Fallthrough from an attack body: the access SUCCEEDED — a breach.
    a.label("breach");
    a.li(Reg::R1, data);
    a.lw(Reg::R2, Reg::R1, 0);
    a.shli(Reg::R3, Reg::R2, 2);
    a.add(Reg::R3, Reg::R3, Reg::R1);
    a.li(Reg::R4, 0);
    a.sw(Reg::R3, 4, Reg::R4); // results[i] = 0 (succeeded!)
    a.jmp("advance");

    a.label("advance");
    a.li(Reg::R1, data);
    a.lw(Reg::R2, Reg::R1, 0);
    a.addi(Reg::R2, Reg::R2, 1);
    a.sw(Reg::R1, 0, Reg::R2);
    a.jmp("dispatch");

    // Jump-table dispatch on the current index.
    a.label("dispatch");
    a.li(Reg::R1, data);
    a.lw(Reg::R2, Reg::R1, 0);
    a.li(Reg::R3, ATTACKS.len() as u32);
    a.bge(Reg::R2, Reg::R3, "finished");
    a.la(Reg::R4, "attack_table");
    a.shli(Reg::R5, Reg::R2, 2);
    a.add(Reg::R4, Reg::R4, Reg::R5);
    a.lw(Reg::R4, Reg::R4, 0);
    a.jr(Reg::R4);
    a.label("finished");
    a.halt();

    a.label("attack_table");
    for i in 0..ATTACKS.len() {
        a.word_label(&format!("atk{i}"));
    }

    // Attack 0: read the victim's private data.
    a.label("atk0");
    a.li(Reg::R6, victim.data_base);
    a.lw(Reg::R7, Reg::R6, 0);
    a.jmp("breach");
    // Attack 1: write the victim's private data.
    a.label("atk1");
    a.li(Reg::R6, victim.data_base);
    a.li(Reg::R7, 0x0bad_0bad);
    a.sw(Reg::R6, 0, Reg::R7);
    a.jmp("breach");
    // Attack 2: write the victim's code region.
    a.label("atk2");
    a.li(Reg::R6, victim.code_base + 16);
    a.li(Reg::R7, 0);
    a.sw(Reg::R6, 0, Reg::R7);
    a.jmp("breach");
    // Attack 3: jump past the entry vector into the code body. Any
    // instruction executed there means the fetch was allowed: breach is
    // recorded only if the victim code runs to a halt — conservatively,
    // landing anywhere in the body at all is the breach, so the body
    // would have to return; blocked means the fetch faulted.
    a.label("atk3");
    a.li(Reg::R6, victim.code_base + victim.entry_len + 8);
    a.jr(Reg::R6);
    // Attack 4: rewrite MPU rule slot 0's START register.
    a.label("atk4");
    a.li(Reg::R6, map::MPU_MMIO_BASE);
    a.li(Reg::R7, 0);
    a.sw(Reg::R6, 0, Reg::R7);
    a.jmp("breach");
    // Attack 5: overwrite the victim's Trustlet Table row.
    a.label("atk5");
    a.li(Reg::R6, layout::tt_base() + 16 * victim.tt_index);
    a.li(Reg::R7, 0xffff_ffff);
    a.sw(Reg::R6, 0, Reg::R7);
    a.jmp("breach");
    // Attack 6: overwrite the victim's measurement row.
    a.label("atk6");
    a.li(Reg::R6, victim.measure_slot);
    a.li(Reg::R7, 0);
    a.sw(Reg::R6, 0, Reg::R7);
    a.jmp("breach");
    // Attack 7: read the platform key from the key store.
    a.label("atk7");
    a.li(Reg::R6, map::KEYSTORE_MMIO_BASE);
    a.lw(Reg::R7, Reg::R6, 0);
    a.jmp("breach");
}

/// Reads the attack results after the run: one entry per [`ATTACKS`]
/// element, true = blocked.
pub fn read_results(platform: &mut trustlite::Platform) -> Vec<bool> {
    let data = platform.os.data_base;
    (0..ATTACKS.len())
        .map(|i| {
            platform
                .machine
                .sys
                .hw_read32(data + 4 + 4 * i as u32)
                .map(|v| v == 1)
                .unwrap_or(false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite::platform::PlatformBuilder;
    use trustlite::spec::TrustletOptions;
    use trustlite_cpu::{HaltReason, RunExit};

    #[test]
    fn every_attack_is_blocked() {
        let mut b = PlatformBuilder::new();
        let victim = b.plan_trustlet("victim", 0x200, 0x80, 0x80);
        let mut t = victim.begin_program();
        t.asm.label("main");
        t.asm.halt();
        b.add_trustlet(&victim, t.finish().unwrap(), TrustletOptions::default())
            .unwrap();
        let mut os = b.begin_os();
        build_attack_os(&mut os, &victim);
        let os_img = os.finish().unwrap();
        b.set_os(os_img, ATTACK_IDT);
        let mut p = b.build().unwrap();

        let exit = p.run(500_000);
        assert!(
            matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
            "{exit:?}"
        );
        let results = read_results(&mut p);
        for (name, blocked) in ATTACKS.iter().zip(&results) {
            assert!(blocked, "BREACH: `{name}` succeeded");
        }
        assert_eq!(
            p.machine
                .exc_log
                .iter()
                .filter(|r| r.vector == vectors::VEC_MPU_FAULT)
                .count(),
            ATTACKS.len(),
            "one protection fault per attack"
        );
    }

    #[test]
    fn a_weakened_policy_is_detected_as_breach() {
        let mut b = PlatformBuilder::new();
        let victim = b.plan_trustlet("victim", 0x200, 0x80, 0x80);
        let mut t = victim.begin_program();
        t.asm.label("main");
        t.asm.halt();
        // Deliberately weaken the policy: public data region (the paper
        // allows policy-controlled sharing; here it makes attack 0 land).
        b.add_trustlet(&victim, t.finish().unwrap(), TrustletOptions::default())
            .unwrap();
        let mut os = b.begin_os();
        build_attack_os(&mut os, &victim);
        let os_img = os.finish().unwrap();
        b.set_os(os_img, ATTACK_IDT);
        let mut p = b.build().unwrap();
        // Host-level injection of a world-readable rule over the data
        // region (a policy bug the harness must catch).
        let spare = p.machine.sys.mpu.slot_count() - 1;
        p.machine
            .sys
            .mpu
            .set_rule(
                spare,
                trustlite_mpu::RuleSlot {
                    start: victim.data_base,
                    end: victim.stack_top(),
                    perms: trustlite_mpu::Perms::R,
                    subject: trustlite_mpu::Subject::Any,
                    enabled: true,
                    locked: false,
                },
            )
            .unwrap();
        p.run(500_000);
        let results = read_results(&mut p);
        assert!(!results[0], "read attack must now succeed");
        assert!(results[1], "write attacks still blocked");
    }
}
