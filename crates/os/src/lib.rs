//! The "homegrown" embedded OS of the TrustLite evaluation.
//!
//! The paper deploys a small in-house OS whose bootstrapping routine acts
//! as the Secure Loader and which schedules trustlets like ordinary tasks
//! (Sections 3.5, 5.1). This crate generates such an OS as an SP32
//! program that runs **inside the simulator** — crucially, the OS is
//! *untrusted*: every security property must hold against it, and the
//! test suite includes malicious variants.
//!
//! * [`scheduler`] — a preemptive round-robin scheduler driven by the
//!   platform timer: trustlets are resumed through their `continue()`
//!   entries; the secure exception engine does all state saving, so the
//!   OS never sees (or needs) trustlet register state.
//! * [`priority`] — a fixed-priority scheduler variant (the policy is the
//!   OS's business; the protection guarantees do not change).
//! * [`queue`] — ring-buffer message queues for unprotected IPC
//!   (Section 4.2.1).
//! * [`trustlet_lib`] — code-generation helpers for common trustlet
//!   behaviours used by tests, examples and benches.
//! * [`attacks`] — a malicious-OS penetration harness that runs a battery
//!   of forbidden accesses and records which the EA-MPU blocked.
//! * [`metrics`] — scheduler activity summaries (preemptions, yields,
//!   per-task attributed cycles) derived from the unified telemetry
//!   layer in `trustlite-obs`.

pub mod attacks;
pub mod metrics;
pub mod priority;
pub mod queue;
pub mod scheduler;
pub mod trustlet_lib;

pub use attacks::{build_attack_os, read_results, ATTACKS, ATTACK_IDT};
pub use metrics::{sched_summary, SchedSummary};
pub use priority::{build_priority_os, PriorityConfig, PriorityTask};
pub use scheduler::{build_scheduler_os, ScheduledTask, SchedulerConfig, SCHED_IDT};

/// Software-interrupt number a task issues to yield the CPU.
pub const SWI_YIELD: u8 = 1;
/// Software-interrupt number a task issues when it is finished.
pub const SWI_EXIT: u8 = 2;
