//! Scheduler-level telemetry, built on the unified observability layer.
//!
//! The scheduler itself is untrusted SP32 code running inside the
//! simulator, so its activity is observed from the outside: preemptions,
//! yields and exits come from the secure exception engine's log, and
//! per-task CPU time comes from the cycle-attribution domains the
//! platform registers for each trustlet. [`sched_summary`] folds both
//! into the machine's metrics registry (`sched.preemptions`,
//! `sched.yields`, `sched.exits`) and returns a per-task breakdown.

use trustlite::MetricsReport;
use trustlite_cpu::{vectors, Machine};

use crate::scheduler::SchedulerConfig;
use crate::{SWI_EXIT, SWI_YIELD};

/// A scheduler activity summary derived from machine telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedSummary {
    /// Attribution-domain transitions (OS ↔ task ↔ task).
    pub context_switches: u64,
    /// Timer interrupts that preempted a running trustlet.
    pub preemptions: u64,
    /// Voluntary `swi YIELD`s.
    pub yields: u64,
    /// `swi EXIT`s (task completion).
    pub exits: u64,
    /// Attributed cycles per scheduled task, in task-list order. Tasks
    /// without a registered attribution domain report 0.
    pub per_task: Vec<(String, u64)>,
    /// Cycles attributed to the OS domain.
    pub os_cycles: u64,
    /// The full metrics snapshot the summary was derived from.
    pub report: MetricsReport,
}

/// Summarizes scheduler activity on `m` for the tasks in `cfg`.
///
/// Also folds the exception-log-derived counters into the machine's
/// metrics registry so they appear in later [`Machine::metrics_report`]
/// snapshots.
pub fn sched_summary(m: &mut Machine, cfg: &SchedulerConfig) -> SchedSummary {
    let mut preemptions = 0u64;
    let mut yields = 0u64;
    let mut exits = 0u64;
    for r in &m.exc_log {
        if r.vector == vectors::irq_vector(0) && r.trustlet.is_some() {
            preemptions += 1;
        } else if r.vector == vectors::VEC_SWI_BASE + SWI_YIELD {
            yields += 1;
        } else if r.vector == vectors::VEC_SWI_BASE + SWI_EXIT {
            exits += 1;
        }
    }
    m.sys.obs.metrics.set("sched.preemptions", preemptions);
    m.sys.obs.metrics.set("sched.yields", yields);
    m.sys.obs.metrics.set("sched.exits", exits);

    let report = m.metrics_report();
    let cycles_of = |name: &str| -> u64 {
        report
            .attribution
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    };
    SchedSummary {
        context_switches: report
            .counters
            .get("sched.context_switches")
            .copied()
            .unwrap_or(0),
        preemptions,
        yields,
        exits,
        per_task: cfg
            .tasks
            .iter()
            .map(|t| (t.name.clone(), cycles_of(&t.name)))
            .collect(),
        os_cycles: cycles_of("os"),
        report,
    }
}
