//! A fixed-priority preemptive scheduler (alternative OS personality).
//!
//! Demonstrates that the scheduling *policy* is entirely the untrusted
//! OS's business — TrustLite's guarantees are identical under any
//! scheduler, because resumption is always the same hardware-protected
//! `continue()` path. Real-time-flavoured deployments (Section 2.3 lists
//! real-time constraints as typical) prefer fixed priorities over round
//! robin.
//!
//! Task-table layout in the OS data region (12 bytes per task):
//!
//! ```text
//! data_base + 0    current task index (0xffff_ffff when idle)
//! data_base + 4    task count
//! data_base + 8    table: per task {entry, status, priority}
//!                  (status 1 = ready, 0 = dead; lower priority value
//!                  runs first)
//! ```

use trustlite::layout;
use trustlite::platform::OsProgram;
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_periph::timer;

/// A prioritized task.
#[derive(Debug, Clone)]
pub struct PriorityTask {
    /// Display name (host side only).
    pub name: String,
    /// Resume entry (a trustlet's `continue()` entry).
    pub entry: u32,
    /// Priority; lower runs first.
    pub priority: u32,
}

/// Configuration for the priority scheduler.
#[derive(Debug, Clone)]
pub struct PriorityConfig {
    /// Preemption quantum in cycles (0 = cooperative only).
    pub timer_period: u32,
    /// The task set.
    pub tasks: Vec<PriorityTask>,
}

/// Emits the priority-scheduler OS into `os`. Register the image with
/// [`crate::scheduler::SCHED_IDT`] (the ISR labels are the same).
pub fn build_priority_os(os: &mut OsProgram, cfg: &PriorityConfig) {
    let data = os.data_base;
    let stack_top = os.stack_top;
    let a = &mut os.asm;

    a.label("main");
    a.li(Reg::Sp, stack_top);
    a.li(Reg::R1, data);
    a.movi(Reg::R2, -1);
    a.sw(Reg::R1, 0, Reg::R2); // current = -1
    a.li(Reg::R2, cfg.tasks.len() as u32);
    a.sw(Reg::R1, 4, Reg::R2); // count
    for (i, task) in cfg.tasks.iter().enumerate() {
        a.li(Reg::R2, task.entry);
        a.sw(Reg::R1, (8 + 12 * i) as i16, Reg::R2);
        a.li(Reg::R3, 1);
        a.sw(Reg::R1, (12 + 12 * i) as i16, Reg::R3);
        a.li(Reg::R3, task.priority);
        a.sw(Reg::R1, (16 + 12 * i) as i16, Reg::R3);
    }
    if cfg.timer_period > 0 {
        a.li(Reg::R4, map::TIMER_MMIO_BASE);
        a.li(Reg::R2, cfg.timer_period);
        a.sw(Reg::R4, timer::regs::PERIOD as i16, Reg::R2);
        a.li(Reg::R2, timer::CTRL_ENABLE | timer::CTRL_AUTO_RELOAD);
        a.sw(Reg::R4, timer::regs::CTRL as i16, Reg::R2);
    }
    a.jmp("dispatch");

    // Tick/yield: re-dispatch (the highest-priority ready task wins; a
    // preempted lower-priority task naturally loses the CPU).
    a.label("isr_timer");
    a.label("isr_yield");
    a.jmp("dispatch");

    // Exit/fault: mark the current task dead, re-dispatch.
    a.label("isr_exit");
    a.label("isr_fault");
    a.li(Reg::R1, data);
    a.lw(Reg::R0, Reg::R1, 0);
    a.movi(Reg::R2, 0);
    a.blt(Reg::R0, Reg::R2, "dispatch"); // current == -1
                                         // status[current] = 0 at data + 8 + 12*current + 4.
    a.shli(Reg::R3, Reg::R0, 3);
    a.shli(Reg::R4, Reg::R0, 2);
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.add(Reg::R3, Reg::R3, Reg::R1);
    a.sw(Reg::R3, 12, Reg::R2);
    a.jmp("dispatch");

    // dispatch: pick the ready task with the minimal priority value.
    a.label("dispatch");
    a.li(Reg::R1, data);
    a.lw(Reg::R2, Reg::R1, 4); // count
    a.li(Reg::R3, 0); // index
    a.movi(Reg::R4, -1); // best index
    a.li(Reg::R5, 0x7fff_ffff); // best priority
    a.label("scan");
    a.bge(Reg::R3, Reg::R2, "scan_done");
    // entry addr of record i = data + 8 + 12*i.
    a.shli(Reg::R6, Reg::R3, 3);
    a.shli(Reg::R7, Reg::R3, 2);
    a.add(Reg::R6, Reg::R6, Reg::R7);
    a.add(Reg::R6, Reg::R6, Reg::R1);
    a.lw(Reg::R7, Reg::R6, 12); // status
    a.li(Reg::R0, 1);
    a.bne(Reg::R7, Reg::R0, "scan_next");
    a.lw(Reg::R7, Reg::R6, 16); // priority
    a.bge(Reg::R7, Reg::R5, "scan_next");
    a.mov(Reg::R5, Reg::R7);
    a.mov(Reg::R4, Reg::R3);
    a.label("scan_next");
    a.addi(Reg::R3, Reg::R3, 1);
    a.jmp("scan");
    a.label("scan_done");
    a.movi(Reg::R0, -1);
    a.beq(Reg::R4, Reg::R0, "idle");
    a.sw(Reg::R1, 0, Reg::R4); // current = best
                               // entry = table[best].entry.
    a.shli(Reg::R6, Reg::R4, 3);
    a.shli(Reg::R7, Reg::R4, 2);
    a.add(Reg::R6, Reg::R6, Reg::R7);
    a.add(Reg::R6, Reg::R6, Reg::R1);
    a.lw(Reg::R5, Reg::R6, 8);
    a.li(Reg::R6, layout::os_sp_cell());
    a.lw(Reg::Sp, Reg::R6, 0);
    a.jr(Reg::R5);
    a.label("idle");
    a.halt();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SCHED_IDT;
    use crate::trustlet_lib;
    use trustlite::platform::PlatformBuilder;
    use trustlite::spec::{PeriphGrant, TrustletOptions};
    use trustlite_cpu::{HaltReason, RunExit};
    use trustlite_mpu::Perms;

    #[test]
    fn high_priority_task_runs_to_completion_first() {
        let mut b = PlatformBuilder::new();
        let lo = b.plan_trustlet("lo", 0x200, 0x80, 0x100);
        let hi = b.plan_trustlet("hi", 0x200, 0x80, 0x100);
        for (plan, iters) in [(&lo, 50u32), (&hi, 50)] {
            let mut t = plan.begin_program();
            trustlet_lib::emit_preemptible_counter(&mut t.asm, plan.data_base, iters);
            b.add_trustlet(plan, t.finish().unwrap(), TrustletOptions::default())
                .unwrap();
        }
        b.grant_os_peripheral(PeriphGrant {
            base: map::TIMER_MMIO_BASE,
            size: map::PERIPH_MMIO_SIZE,
            perms: Perms::RW,
        });
        let mut os = b.begin_os();
        build_priority_os(
            &mut os,
            &PriorityConfig {
                timer_period: 300,
                tasks: vec![
                    PriorityTask {
                        name: "lo".into(),
                        entry: lo.continue_entry(),
                        priority: 9,
                    },
                    PriorityTask {
                        name: "hi".into(),
                        entry: hi.continue_entry(),
                        priority: 1,
                    },
                ],
            },
        );
        let os_img = os.finish().unwrap();
        b.set_os(os_img, SCHED_IDT);
        let mut p = b.build().unwrap();
        let exit = p.run(2_000_000);
        assert!(
            matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
            "{exit:?}"
        );
        // Both complete eventually...
        assert_eq!(p.machine.sys.hw_read32(lo.data_base).unwrap(), 50);
        assert_eq!(p.machine.sys.hw_read32(hi.data_base).unwrap(), 50);
        // ...but every preemption of the low task happened only after the
        // high task was done: the high task is never preempted in favour
        // of the low one, so no "lo" progress interleaves "hi" activity.
        // Verify via the exception log: once "hi" (tt_index 1) first
        // appears interrupted, "lo" (0) never appears again until "hi"
        // exits.
        let seq: Vec<_> = p
            .machine
            .exc_log
            .iter()
            .filter_map(|r| r.trustlet)
            .collect();
        if let Some(first_hi) = seq.iter().position(|&t| t == 1) {
            let hi_exit = seq.iter().rposition(|&t| t == 1).unwrap();
            assert!(
                !seq[first_hi..hi_exit].contains(&0),
                "low task ran while high was ready: {seq:?}"
            );
        }
    }

    #[test]
    fn dead_high_priority_task_unblocks_lower() {
        let mut b = PlatformBuilder::new();
        let bad = b.plan_trustlet("bad", 0x200, 0x80, 0x100);
        let lo = b.plan_trustlet("lo", 0x200, 0x80, 0x100);
        let mut t = bad.begin_program();
        trustlet_lib::emit_fault_injector(&mut t.asm, lo.data_base);
        b.add_trustlet(&bad, t.finish().unwrap(), TrustletOptions::default())
            .unwrap();
        let mut t = lo.begin_program();
        trustlet_lib::emit_cooperative_counter(&mut t.asm, lo.data_base, 3);
        b.add_trustlet(&lo, t.finish().unwrap(), TrustletOptions::default())
            .unwrap();
        b.grant_os_peripheral(PeriphGrant {
            base: map::TIMER_MMIO_BASE,
            size: map::PERIPH_MMIO_SIZE,
            perms: Perms::RW,
        });
        let mut os = b.begin_os();
        build_priority_os(
            &mut os,
            &PriorityConfig {
                timer_period: 0,
                tasks: vec![
                    PriorityTask {
                        name: "bad".into(),
                        entry: bad.continue_entry(),
                        priority: 0,
                    },
                    PriorityTask {
                        name: "lo".into(),
                        entry: lo.continue_entry(),
                        priority: 5,
                    },
                ],
            },
        );
        let os_img = os.finish().unwrap();
        b.set_os(os_img, SCHED_IDT);
        let mut p = b.build().unwrap();
        let exit = p.run(500_000);
        assert!(
            matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
            "{exit:?}"
        );
        assert_eq!(
            p.machine.sys.hw_read32(lo.data_base).unwrap(),
            3,
            "low task completed"
        );
    }
}
