//! Ring-buffer message queues for unprotected IPC (Section 4.2.1).
//!
//! The paper reuses ordinary OS facilities — message queues — for IPC
//! with untrusted parties: anything sent to or from an untrusted task is
//! by definition already visible to it. A queue lives in a memory region
//! both parties can access (the receiver's data region for RPC-style
//! delivery, or a shared region):
//!
//! ```text
//! base + 0   head (next slot to read)
//! base + 4   tail (next slot to write)
//! base + 8   slots[capacity] (one word each)
//! ```
//!
//! The queue is single-producer/single-consumer; indices wrap at
//! `capacity`. Emitted code communicates status in `r1` (1 = ok,
//! 0 = full/empty).

use trustlite_isa::{Asm, Reg};

/// Bytes occupied by a queue of `capacity` one-word slots.
pub fn queue_bytes(capacity: u32) -> u32 {
    8 + 4 * capacity
}

/// Emits an enqueue of `r0` into the queue at `base`.
///
/// On return `r1` is 1 on success, 0 if the queue was full. Clobbers
/// `r2..r5`.
pub fn emit_enqueue(a: &mut Asm, base: u32, capacity: u32) {
    let u = a.here();
    let full = format!("__q_full_{u}");
    let nowrap = format!("__q_enq_nowrap_{u}");
    let done = format!("__q_enq_done_{u}");
    a.li(Reg::R2, base);
    a.lw(Reg::R3, Reg::R2, 4); // tail
                               // next = (tail + 1) % capacity
    a.addi(Reg::R4, Reg::R3, 1);
    a.li(Reg::R5, capacity);
    a.blt(Reg::R4, Reg::R5, &nowrap);
    a.li(Reg::R4, 0);
    a.label(&nowrap);
    // full if next == head
    a.lw(Reg::R5, Reg::R2, 0);
    a.beq(Reg::R4, Reg::R5, &full);
    // slots[tail] = r0
    a.shli(Reg::R5, Reg::R3, 2);
    a.add(Reg::R5, Reg::R5, Reg::R2);
    a.sw(Reg::R5, 8, Reg::R0);
    // tail = next
    a.sw(Reg::R2, 4, Reg::R4);
    a.li(Reg::R1, 1);
    a.jmp(&done);
    a.label(&full);
    a.li(Reg::R1, 0);
    a.label(&done);
}

/// Emits a dequeue from the queue at `base` into `r0`.
///
/// On return `r1` is 1 on success, 0 if the queue was empty. Clobbers
/// `r2..r5`.
pub fn emit_dequeue(a: &mut Asm, base: u32, capacity: u32) {
    let u = a.here();
    let empty = format!("__q_empty_{u}");
    let nowrap = format!("__q_deq_nowrap_{u}");
    let done = format!("__q_deq_done_{u}");
    a.li(Reg::R2, base);
    a.lw(Reg::R3, Reg::R2, 0); // head
    a.lw(Reg::R4, Reg::R2, 4); // tail
    a.beq(Reg::R3, Reg::R4, &empty);
    // r0 = slots[head]
    a.shli(Reg::R5, Reg::R3, 2);
    a.add(Reg::R5, Reg::R5, Reg::R2);
    a.lw(Reg::R0, Reg::R5, 8);
    // head = (head + 1) % capacity
    a.addi(Reg::R3, Reg::R3, 1);
    a.li(Reg::R5, capacity);
    a.blt(Reg::R3, Reg::R5, &nowrap);
    a.li(Reg::R3, 0);
    a.label(&nowrap);
    a.sw(Reg::R2, 0, Reg::R3);
    a.li(Reg::R1, 1);
    a.jmp(&done);
    a.label(&empty);
    a.li(Reg::R1, 0);
    a.label(&done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_cpu::{HaltReason, Machine, RunExit, SystemBus};
    use trustlite_mem::{Bus, Ram, Rom};
    use trustlite_mpu::EaMpu;

    const CODE: u32 = 0;
    const QUEUE: u32 = 0x1000_0000;
    const CAP: u32 = 4;

    fn run_program(build: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new(CODE);
        build(&mut a);
        a.halt();
        let img = a.assemble().unwrap();
        let mut bus = Bus::new();
        bus.map(CODE, Box::new(Rom::new(0x4000))).unwrap();
        bus.map(QUEUE, Box::new(Ram::new("sram", 0x1000))).unwrap();
        bus.host_load(CODE, &img.bytes);
        let mut sys = SystemBus::new(bus, EaMpu::new(2), None);
        sys.enforce = false;
        let mut m = Machine::new(sys, CODE);
        assert!(matches!(
            m.run(10_000),
            RunExit::Halted(HaltReason::Halt { .. })
        ));
        m
    }

    #[test]
    fn enqueue_dequeue_roundtrip() {
        let m = run_program(|a| {
            a.li(Reg::R0, 0xaa);
            emit_enqueue(a, QUEUE, CAP);
            a.li(Reg::R0, 0xbb);
            emit_enqueue(a, QUEUE, CAP);
            emit_dequeue(a, QUEUE, CAP);
            a.mov(Reg::R6, Reg::R0); // first out
            emit_dequeue(a, QUEUE, CAP);
            a.mov(Reg::R7, Reg::R0); // second out
        });
        assert_eq!(m.regs.gprs[6], 0xaa, "FIFO order");
        assert_eq!(m.regs.gprs[7], 0xbb);
        assert_eq!(m.regs.gprs[1], 1, "last dequeue succeeded");
    }

    #[test]
    fn dequeue_empty_reports_failure() {
        let m = run_program(|a| {
            emit_dequeue(a, QUEUE, CAP);
        });
        assert_eq!(m.regs.gprs[1], 0);
    }

    #[test]
    fn enqueue_full_reports_failure() {
        let m = run_program(|a| {
            // Capacity 4 holds 3 elements (one slot distinguishes
            // full/empty).
            for v in [1u32, 2, 3, 4] {
                a.li(Reg::R0, v);
                emit_enqueue(a, QUEUE, CAP);
            }
        });
        assert_eq!(m.regs.gprs[1], 0, "fourth enqueue fails");
    }

    #[test]
    fn wraparound_preserves_order() {
        let m = run_program(|a| {
            for v in [1u32, 2, 3] {
                a.li(Reg::R0, v);
                emit_enqueue(a, QUEUE, CAP);
            }
            emit_dequeue(a, QUEUE, CAP); // 1 out
            emit_dequeue(a, QUEUE, CAP); // 2 out
            a.li(Reg::R0, 4);
            emit_enqueue(a, QUEUE, CAP); // wraps
            emit_dequeue(a, QUEUE, CAP); // 3
            a.mov(Reg::R6, Reg::R0);
            emit_dequeue(a, QUEUE, CAP); // 4
            a.mov(Reg::R7, Reg::R0);
        });
        assert_eq!(m.regs.gprs[6], 3);
        assert_eq!(m.regs.gprs[7], 4);
    }
}
