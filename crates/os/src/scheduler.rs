//! The preemptive round-robin scheduler.
//!
//! Task-table layout in the OS data region:
//!
//! ```text
//! data_base + 0   current task index (0xffff_ffff before first dispatch)
//! data_base + 4   task count
//! data_base + 8   task table: per task {entry address, status} (8 bytes;
//!                 status 1 = ready, 0 = dead)
//! ```
//!
//! The scheduler resumes every task by jumping to its `continue()` entry
//! — for trustlets, the secure exception engine has already saved and
//! scrubbed all state, so resumption needs no OS cooperation beyond the
//! jump (Section 3.4.2). On the timer tick, a `swi YIELD`, a `swi EXIT`
//! or a fault, the ISR picks the next ready task; when none remain the OS
//! halts the platform.

use trustlite::layout;
use trustlite::platform::OsProgram;
use trustlite_cpu::vectors;
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_periph::timer;

use crate::{SWI_EXIT, SWI_YIELD};

/// A task known to the scheduler.
#[derive(Debug, Clone)]
pub struct ScheduledTask {
    /// Display name (host-side only).
    pub name: String,
    /// The task's resume entry (a trustlet's `continue()` entry).
    pub entry: u32,
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Timer period in cycles (preemption quantum). 0 disables the timer
    /// (cooperative scheduling via `swi YIELD` only).
    pub timer_period: u32,
    /// The task list, in round-robin order.
    pub tasks: Vec<ScheduledTask>,
}

/// The IDT wiring expected by [`build_scheduler_os`]: pass this to
/// [`trustlite::PlatformBuilder::set_os`].
pub const SCHED_IDT: &[(u8, &str)] = &[
    (vectors::VEC_MPU_FAULT, "isr_fault"),
    (vectors::VEC_ILLEGAL, "isr_fault"),
    (vectors::VEC_BUS_FAULT, "isr_fault"),
    (vectors::VEC_IRQ_BASE, "isr_timer"), // timer is line 0
    (vectors::VEC_SWI_BASE + SWI_YIELD, "isr_yield"),
    (vectors::VEC_SWI_BASE + SWI_EXIT, "isr_exit"),
];

/// Emits the scheduler OS into `os`. The caller must register the image
/// with [`SCHED_IDT`] and grant the OS the timer MMIO window when
/// `timer_period > 0`.
pub fn build_scheduler_os(os: &mut OsProgram, cfg: &SchedulerConfig) {
    let data = os.data_base;
    let stack_top = os.stack_top;
    let a = &mut os.asm;

    a.label("main");
    a.li(Reg::Sp, stack_top);
    // Initialize the task table.
    a.li(Reg::R1, data);
    a.movi(Reg::R2, -1);
    a.sw(Reg::R1, 0, Reg::R2); // current = -1
    a.li(Reg::R2, cfg.tasks.len() as u32);
    a.sw(Reg::R1, 4, Reg::R2); // count
    for (i, task) in cfg.tasks.iter().enumerate() {
        a.li(Reg::R2, task.entry);
        a.sw(Reg::R1, (8 + 8 * i) as i16, Reg::R2);
        a.li(Reg::R3, 1);
        a.sw(Reg::R1, (12 + 8 * i) as i16, Reg::R3);
    }
    // Program the preemption timer (auto-reload, IDT-vectored).
    if cfg.timer_period > 0 {
        a.li(Reg::R4, map::TIMER_MMIO_BASE);
        a.li(Reg::R2, cfg.timer_period);
        a.sw(Reg::R4, timer::regs::PERIOD as i16, Reg::R2);
        a.li(Reg::R2, timer::CTRL_ENABLE | timer::CTRL_AUTO_RELOAD);
        a.sw(Reg::R4, timer::regs::CTRL as i16, Reg::R2);
    }
    // First dispatch from index 0.
    a.li(Reg::R0, 0);
    a.jmp("dispatch");

    // Timer tick / voluntary yield: schedule the task after the current.
    a.label("isr_timer");
    a.label("isr_yield");
    a.li(Reg::R1, data);
    a.lw(Reg::R0, Reg::R1, 0);
    a.addi(Reg::R0, Reg::R0, 1);
    a.jmp("dispatch");

    // Task exit or fault: mark the current task dead, schedule onward.
    a.label("isr_exit");
    a.label("isr_fault");
    a.li(Reg::R1, data);
    a.lw(Reg::R0, Reg::R1, 0);
    a.movi(Reg::R2, 0);
    a.blt(Reg::R0, Reg::R2, "fault_no_current"); // current == -1
    a.shli(Reg::R3, Reg::R0, 3);
    a.add(Reg::R3, Reg::R3, Reg::R1);
    a.sw(Reg::R3, 12, Reg::R2); // status = 0
    a.label("fault_no_current");
    a.addi(Reg::R0, Reg::R0, 1);
    a.jmp("dispatch");

    // dispatch: r0 = candidate index (may equal count; wraps once).
    a.label("dispatch");
    a.li(Reg::R1, data);
    a.lw(Reg::R2, Reg::R1, 4); // count
    a.li(Reg::R3, 0); // tries
    a.label("dispatch_loop");
    a.bge(Reg::R3, Reg::R2, "dispatch_idle");
    a.blt(Reg::R0, Reg::R2, "dispatch_no_wrap");
    a.sub(Reg::R0, Reg::R0, Reg::R2);
    a.label("dispatch_no_wrap");
    a.shli(Reg::R4, Reg::R0, 3);
    a.add(Reg::R4, Reg::R4, Reg::R1);
    a.lw(Reg::R5, Reg::R4, 12); // status
    a.li(Reg::R6, 1);
    a.beq(Reg::R5, Reg::R6, "dispatch_found");
    a.addi(Reg::R0, Reg::R0, 1);
    a.addi(Reg::R3, Reg::R3, 1);
    a.jmp("dispatch_loop");
    a.label("dispatch_found");
    a.sw(Reg::R1, 0, Reg::R0); // current = idx
    a.lw(Reg::R5, Reg::R4, 8); // entry
                               // Unwind to a fresh OS stack before leaving the kernel.
    a.li(Reg::R6, layout::os_sp_cell());
    a.lw(Reg::Sp, Reg::R6, 0);
    // The jump to the continue() entry transfers control; the trustlet's
    // own popf re-enables interrupts.
    a.jr(Reg::R5);
    // No ready task remains: stop the platform.
    a.label("dispatch_idle");
    a.halt();
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite::platform::PlatformBuilder;

    #[test]
    fn generated_os_assembles_with_all_isr_labels() {
        let mut b = PlatformBuilder::new();
        let mut os = b.begin_os();
        build_scheduler_os(
            &mut os,
            &SchedulerConfig {
                timer_period: 100,
                tasks: vec![ScheduledTask {
                    name: "t".into(),
                    entry: 0x1000_0800,
                }],
            },
        );
        let img = os.finish().unwrap();
        for (_, sym) in SCHED_IDT {
            assert!(img.symbol(sym).is_some(), "missing {sym}");
        }
    }
}
