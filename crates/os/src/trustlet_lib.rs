//! Code-generation helpers for common trustlet behaviours.
//!
//! Tests, examples and benches need trustlets that "do work": count,
//! yield, guard secrets, serve IPC. These helpers emit such bodies into a
//! [`TrustletProgram`](trustlite::runtime::TrustletProgram).

use trustlite::spec::TrustletPlan;
use trustlite_isa::{Asm, Reg};

use crate::{SWI_EXIT, SWI_YIELD};

/// Emits a `main` that increments `counter_addr` `iterations` times,
/// yielding after each increment, then exits via `swi EXIT`.
///
/// The counter lives in the trustlet's private data region; its final
/// value proves the task ran to completion with its state preserved
/// across preemptions.
pub fn emit_cooperative_counter(a: &mut Asm, counter_addr: u32, iterations: u32) {
    a.label("main");
    a.li(Reg::R1, counter_addr);
    a.li(Reg::R2, 0);
    a.li(Reg::R3, iterations);
    a.label("count_loop");
    a.bge(Reg::R2, Reg::R3, "count_done");
    a.lw(Reg::R4, Reg::R1, 0);
    a.addi(Reg::R4, Reg::R4, 1);
    a.sw(Reg::R1, 0, Reg::R4);
    a.addi(Reg::R2, Reg::R2, 1);
    a.swi(SWI_YIELD);
    // After resumption, our registers (r1, r2, r3) are intact — the
    // secure exception engine saved and restored them.
    a.jmp("count_loop");
    a.label("count_done");
    a.swi(SWI_EXIT);
}

/// Emits a `main` that increments `counter_addr` `iterations` times in a
/// busy loop *without yielding*, relying on timer preemption, then exits.
pub fn emit_preemptible_counter(a: &mut Asm, counter_addr: u32, iterations: u32) {
    a.label("main");
    a.li(Reg::R1, counter_addr);
    a.li(Reg::R2, 0);
    a.li(Reg::R3, iterations);
    a.label("busy_loop");
    a.bge(Reg::R2, Reg::R3, "busy_done");
    a.lw(Reg::R4, Reg::R1, 0);
    a.addi(Reg::R4, Reg::R4, 1);
    a.sw(Reg::R1, 0, Reg::R4);
    a.addi(Reg::R2, Reg::R2, 1);
    a.jmp("busy_loop");
    a.label("busy_done");
    a.swi(SWI_EXIT);
}

/// Emits a `main` that loads a secret constant into every GPR and then
/// spins until preempted (the register-scrubbing probe: the OS must never
/// observe `secret` in any register).
pub fn emit_secret_spinner(a: &mut Asm, secret: u32) {
    a.label("main");
    for r in [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ] {
        a.li(r, secret);
    }
    a.label("spin");
    a.jmp("spin");
}

/// Emits a `main` that deliberately violates the MPU (reads
/// `victim_addr`, which belongs to someone else) to exercise fault
/// isolation.
pub fn emit_fault_injector(a: &mut Asm, victim_addr: u32) {
    a.label("main");
    a.li(Reg::R1, victim_addr);
    a.lw(Reg::R0, Reg::R1, 0);
    // Unreachable if the MPU works.
    a.swi(SWI_EXIT);
}

/// Emits a `call_entry` IPC handler that enqueues the message word in
/// `r1` into a queue at `queue_base` inside the trustlet's data region,
/// then jumps back to the caller's continuation passed in `r2`
/// (Figure 6's `call(type, msg, sender)` with `r0` = type, `r1` = msg,
/// `r2` = sender continuation).
pub fn emit_call_queue_handler(a: &mut Asm, plan: &TrustletPlan, queue_base: u32, capacity: u32) {
    a.label("call_entry");
    // Switch to the own stack before touching memory.
    a.li(Reg::R6, plan.sp_slot);
    a.lw(Reg::Sp, Reg::R6, 0);
    // The enqueue helper clobbers r2..r5; keep the continuation in r7.
    a.mov(Reg::R7, Reg::R2);
    a.mov(Reg::R0, Reg::R1);
    crate::queue::emit_enqueue(a, queue_base, capacity);
    // Return to the sender's continuation.
    a.jr(Reg::R7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_isa::Asm;

    #[test]
    fn snippets_assemble() {
        let mut a = Asm::new(0x1000);
        emit_cooperative_counter(&mut a, 0x2000, 5);
        a.label("main2");
        let img_err = a.assemble();
        assert!(img_err.is_ok());

        let mut a = Asm::new(0x1000);
        emit_secret_spinner(&mut a, 0xdead_beef);
        assert!(a.assemble().is_ok());

        let mut a = Asm::new(0x1000);
        emit_fault_injector(&mut a, 0x9999_0000);
        assert!(a.assemble().is_ok());
    }
}
