//! End-to-end preemptive multitasking: an untrusted OS schedules
//! trustlets while the secure exception engine preserves their state —
//! the paper's Section 3.4 in motion.

use trustlite::platform::{Platform, PlatformBuilder};
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite::{Event, ObsLevel};
use trustlite_cpu::{vectors, HaltReason, RunExit};
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_os::scheduler::{build_scheduler_os, ScheduledTask, SchedulerConfig, SCHED_IDT};
use trustlite_os::trustlet_lib;
use trustlite_periph::timer;

const TIMER_GRANT: PeriphGrant = PeriphGrant {
    base: map::TIMER_MMIO_BASE,
    size: map::PERIPH_MMIO_SIZE,
    perms: Perms::RW,
};

/// Builds a platform with `n` counter trustlets and the scheduler OS.
/// Returns the platform and each trustlet's counter address.
fn build_counters(
    timer_period: u32,
    cooperative: bool,
    iters: u32,
    n: usize,
) -> (Platform, Vec<u32>) {
    let mut b = PlatformBuilder::new();
    let mut plans = Vec::new();
    let mut counters = Vec::new();
    for i in 0..n {
        let plan = b.plan_trustlet(&format!("counter{i}"), 0x200, 0x80, 0x100);
        counters.push(plan.data_base);
        plans.push(plan);
    }
    for plan in &plans {
        let mut t = plan.begin_program();
        if cooperative {
            trustlet_lib::emit_cooperative_counter(&mut t.asm, plan.data_base, iters);
        } else {
            trustlet_lib::emit_preemptible_counter(&mut t.asm, plan.data_base, iters);
        }
        b.add_trustlet(plan, t.finish().unwrap(), TrustletOptions::default())
            .unwrap();
    }
    b.grant_os_peripheral(TIMER_GRANT);
    let mut os = b.begin_os();
    build_scheduler_os(
        &mut os,
        &SchedulerConfig {
            timer_period,
            tasks: plans
                .iter()
                .map(|p| ScheduledTask {
                    name: p.name.clone(),
                    entry: p.continue_entry(),
                })
                .collect(),
        },
    );
    let os_img = os.finish().unwrap();
    b.set_os(os_img, SCHED_IDT);
    (b.build().unwrap(), counters)
}

#[test]
fn cooperative_round_robin_completes_both_tasks() {
    let (mut p, counters) = build_counters(0, true, 5, 2);
    let exit = p.run(100_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    for (i, &c) in counters.iter().enumerate() {
        assert_eq!(p.machine.sys.hw_read32(c).unwrap(), 5, "counter {i}");
    }
    // Yields from both trustlets were secured by the engine.
    let yields: Vec<_> = p
        .machine
        .exc_log
        .iter()
        .filter(|r| r.vector == vectors::VEC_SWI_BASE + trustlite_os::SWI_YIELD)
        .collect();
    assert_eq!(yields.len(), 10, "5 yields per task");
    assert!(yields.iter().all(|r| r.trustlet.is_some()));
    // Round-robin interleaving: consecutive yields come from different
    // trustlets.
    for w in yields.windows(2) {
        assert_ne!(w[0].trustlet, w[1].trustlet, "strict alternation");
    }
}

#[test]
fn preemptive_scheduling_interleaves_busy_trustlets() {
    let (mut p, counters) = build_counters(500, false, 100, 2);
    let exit = p.run(1_000_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    for (i, &c) in counters.iter().enumerate() {
        assert_eq!(p.machine.sys.hw_read32(c).unwrap(), 100, "counter {i}");
    }
    // The timer preempted trustlets mid-computation.
    let preemptions: Vec<_> = p
        .machine
        .exc_log
        .iter()
        .filter(|r| r.vector == vectors::irq_vector(0) && r.trustlet.is_some())
        .collect();
    assert!(
        preemptions.len() >= 4,
        "only {} preemptions",
        preemptions.len()
    );
    // Both trustlets were preempted at least once.
    assert!(preemptions.iter().any(|r| r.trustlet == Some(0)));
    assert!(preemptions.iter().any(|r| r.trustlet == Some(1)));
    // Every trustlet preemption paid the full secure-engine cost.
    for r in &preemptions {
        assert_eq!(r.entry_cycles, 42);
    }
}

#[test]
fn three_way_preemption_with_uneven_work() {
    let mut sizes = Vec::new();
    let (mut p, counters) = {
        let mut b = PlatformBuilder::new();
        let mut plans = Vec::new();
        let mut addrs = Vec::new();
        for (i, iters) in [30u32, 90, 180].iter().enumerate() {
            let plan = b.plan_trustlet(&format!("w{i}"), 0x200, 0x80, 0x100);
            let mut t = plan.begin_program();
            trustlet_lib::emit_preemptible_counter(&mut t.asm, plan.data_base, *iters);
            b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
                .unwrap();
            addrs.push(plan.data_base);
            sizes.push(*iters);
            plans.push(plan);
        }
        b.grant_os_peripheral(TIMER_GRANT);
        let mut os = b.begin_os();
        build_scheduler_os(
            &mut os,
            &SchedulerConfig {
                timer_period: 400,
                tasks: plans
                    .iter()
                    .map(|p| ScheduledTask {
                        name: p.name.clone(),
                        entry: p.continue_entry(),
                    })
                    .collect(),
            },
        );
        let os_img = os.finish().unwrap();
        b.set_os(os_img, SCHED_IDT);
        (b.build().unwrap(), addrs)
    };
    let exit = p.run(2_000_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    for (i, &c) in counters.iter().enumerate() {
        assert_eq!(p.machine.sys.hw_read32(c).unwrap(), sizes[i], "counter {i}");
    }
}

#[test]
fn faulting_trustlet_terminated_while_peer_completes() {
    let mut b = PlatformBuilder::new();
    let plan_bad = b.plan_trustlet("bad", 0x200, 0x80, 0x100);
    let plan_good = b.plan_trustlet("good", 0x200, 0x80, 0x100);

    let mut t = plan_bad.begin_program();
    // Tries to read the peer's private data: MPU fault.
    trustlet_lib::emit_fault_injector(&mut t.asm, plan_good.data_base);
    b.add_trustlet(&plan_bad, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();

    let mut t = plan_good.begin_program();
    trustlet_lib::emit_cooperative_counter(&mut t.asm, plan_good.data_base, 3);
    b.add_trustlet(&plan_good, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();

    b.grant_os_peripheral(TIMER_GRANT);
    let mut os = b.begin_os();
    build_scheduler_os(
        &mut os,
        &SchedulerConfig {
            timer_period: 0,
            tasks: vec![
                ScheduledTask {
                    name: "bad".into(),
                    entry: plan_bad.continue_entry(),
                },
                ScheduledTask {
                    name: "good".into(),
                    entry: plan_good.continue_entry(),
                },
            ],
        },
    );
    let os_img = os.finish().unwrap();
    b.set_os(os_img, SCHED_IDT);
    let mut p = b.build().unwrap();

    let exit = p.run(200_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "fault tolerated, platform ran on: {exit:?}"
    );
    assert_eq!(
        p.machine.sys.hw_read32(plan_good.data_base).unwrap(),
        3,
        "peer completed"
    );
    assert_eq!(p.machine.sys.hw_read32(plan_good.data_base).unwrap(), 3);
    let fault = p
        .machine
        .exc_log
        .iter()
        .find(|r| r.vector == vectors::VEC_MPU_FAULT)
        .expect("fault recorded");
    assert_eq!(fault.trustlet, Some(0), "the bad trustlet faulted");
}

#[test]
fn os_isr_observes_no_trustlet_registers() {
    // A trustlet fills every GPR with a secret and spins; the timer fires
    // and a probing OS ISR captures what it can see.
    const SECRET: u32 = 0x5ec4_e75a;
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("holder", 0x200, 0x80, 0x100);
    let mut t = plan.begin_program();
    trustlet_lib::emit_secret_spinner(&mut t.asm, SECRET);
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();

    b.grant_os_peripheral(TIMER_GRANT);
    let mut os = b.begin_os();
    let data = os.data_base;
    let stack_top = os.stack_top;
    let entry = plan.continue_entry();
    {
        let a = &mut os.asm;
        a.label("main");
        a.li(Reg::Sp, stack_top);
        a.li(Reg::R4, map::TIMER_MMIO_BASE);
        a.li(Reg::R2, 300);
        a.sw(Reg::R4, timer::regs::PERIOD as i16, Reg::R2);
        a.li(Reg::R2, timer::CTRL_ENABLE);
        a.sw(Reg::R4, timer::regs::CTRL as i16, Reg::R2);
        a.li(Reg::R1, entry);
        a.jr(Reg::R1);
        a.label("isr_probe");
        // Capture the full register file and the reported frame.
        a.li(Reg::R6, data);
        for (i, r) in [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5]
            .iter()
            .enumerate()
        {
            a.sw(Reg::R6, (4 * i) as i16, *r);
        }
        a.lw(Reg::R7, Reg::Sp, 12); // reported interrupted IP
        a.sw(Reg::R6, 24, Reg::R7);
        a.lw(Reg::R7, Reg::Sp, 16); // reported interrupted SP
        a.sw(Reg::R6, 28, Reg::R7);
        a.halt();
    }
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[(vectors::irq_vector(0), "isr_probe")]);
    let mut p = b.build().unwrap();

    let exit = p.run(100_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    // Nothing the ISR captured contains the secret.
    for i in 0..6 {
        let v = p.machine.sys.hw_read32(data + 4 * i).unwrap();
        assert_ne!(v, SECRET, "register leak at capture slot {i}");
    }
    // The reported IP was sanitized to the entry vector, the SP to zero.
    assert_eq!(
        p.machine.sys.hw_read32(data + 24).unwrap(),
        plan.continue_entry()
    );
    assert_eq!(p.machine.sys.hw_read32(data + 28).unwrap(), 0);
    // And the secrets are still on the trustlet stack, where the OS
    // cannot reach them (MPU check).
    let row = trustlite_cpu::ttable::read_row(&mut p.machine.sys, p.machine.hw.tt_base, 0).unwrap();
    assert_eq!(
        p.machine.sys.hw_read32(row.saved_sp).unwrap(),
        SECRET,
        "r7 saved"
    );
    assert!(!p.machine.sys.mpu.allows(
        p.os.entry + 32,
        row.saved_sp,
        trustlite_mpu::AccessKind::Read
    ));
}

#[test]
fn exception_events_match_exc_log_under_preemption() {
    // Regression: the telemetry event stream and the legacy exc_log are
    // two views of the same exception engine; on a busy preemptive
    // scenario they must agree exactly.
    let (mut p, _) = build_counters(500, false, 100, 2);
    p.machine.sys.obs.set_level(ObsLevel::Events);
    let exit = p.run(1_000_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert!(p.machine.exc_log.len() > 4, "scenario took exceptions");

    let enters: Vec<&Event> = p
        .machine
        .sys
        .obs
        .ring
        .iter()
        .filter(|e| matches!(e, Event::ExceptionEnter { .. }))
        .collect();
    assert_eq!(
        enters.len(),
        p.machine.exc_log.len(),
        "one event per logged exception"
    );
    for (e, r) in enters.iter().zip(&p.machine.exc_log) {
        let Event::ExceptionEnter { cycle, frame } = e else {
            unreachable!()
        };
        assert_eq!(*cycle, r.at_cycle);
        assert_eq!(frame.vector, r.vector);
        assert_eq!(frame.trustlet, r.trustlet);
        assert_eq!(frame.interrupted_ip, r.interrupted_ip);
        assert_eq!(frame.cycles, r.entry_cycles);
    }

    // The scheduler metrics helper agrees with the raw log.
    let summary = trustlite_os::sched_summary(
        &mut p.machine,
        &SchedulerConfig {
            timer_period: 500,
            tasks: vec![],
        },
    );
    let log_preemptions = p
        .machine
        .exc_log
        .iter()
        .filter(|r| r.vector == vectors::irq_vector(0) && r.trustlet.is_some())
        .count() as u64;
    assert_eq!(summary.preemptions, log_preemptions);
    assert!(summary.context_switches > 0, "domain transitions recorded");
    // Attributed cycles cover the whole run.
    assert_eq!(summary.report.attributed_cycles(), p.machine.cycles);
}

#[test]
fn preempted_state_resumes_exactly() {
    // One busy counter with a quantum so short it is preempted many
    // times; the final count must still be exact (lossless save/resume).
    let (mut p, counters) = build_counters(250, false, 300, 1);
    let exit = p.run(2_000_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(p.machine.sys.hw_read32(counters[0]).unwrap(), 300);
    let preemptions = p
        .machine
        .exc_log
        .iter()
        .filter(|r| r.vector == vectors::irq_vector(0))
        .count();
    assert!(preemptions > 10, "only {preemptions} preemptions");
}
