//! The cryptographic accelerator peripheral.
//!
//! The paper treats a hardware hash (it cites Spongent) as an optional
//! accelerator that the EA-MPU base-cost margin can absorb, and uses code
//! measurement for local and remote attestation. This device exposes the
//! `trustlite-crypto` implementations behind a small FIFO register
//! interface so that *simulated* code — the attestation trustlet, the
//! trusted-IPC handshake — can hash and MAC without a software
//! implementation in SP32 assembly.
//!
//! Register map:
//!
//! ```text
//! +0x00 CTRL    (w) 1 = init SHA-256, 2 = init sponge, 3 = init HMAC
//!                   (keyed from the KEY registers), 4 = finalize
//!               (r) bit0 = busy
//! +0x04 DATA    (w) absorb four message bytes (little-endian word)
//! +0x10..+0x2f  DIGEST[0..8] (ro; valid when idle after finalize)
//! +0x40..+0x5f  KEY[0..8]    (wo)
//! ```
//!
//! Timing model: `init` costs [`INIT_CYCLES`], each absorbed word
//! [`ABSORB_CYCLES`], `finalize` [`FINALIZE_CYCLES`]; the device simply
//! stays busy for that long (polled via CTRL bit0). Data written while
//! busy queues internally, as a hardware FIFO would. Only whole words are
//! absorbed — measurement inputs (code regions, table rows, nonces) are
//! word-aligned by construction.

use std::any::Any;

use trustlite_crypto::{Hmac, Sha256, Sponge};
use trustlite_mem::{BusError, Device};

/// Cycles charged for an init command.
pub const INIT_CYCLES: u64 = 4;
/// Cycles charged per absorbed word.
pub const ABSORB_CYCLES: u64 = 1;
/// Cycles charged for finalize (one permutation/compression latency).
pub const FINALIZE_CYCLES: u64 = 64;

/// Register offsets.
pub mod regs {
    /// Control/status register.
    pub const CTRL: u32 = 0x00;
    /// Data FIFO register.
    pub const DATA: u32 = 0x04;
    /// First digest word (8 consecutive words).
    pub const DIGEST0: u32 = 0x10;
    /// First key word (8 consecutive words).
    pub const KEY0: u32 = 0x40;
}

/// CTRL commands.
pub mod cmd {
    /// Start a SHA-256 computation.
    pub const INIT_SHA256: u32 = 1;
    /// Start a sponge-hash computation.
    pub const INIT_SPONGE: u32 = 2;
    /// Start an HMAC-SHA-256 computation keyed from the KEY registers.
    pub const INIT_HMAC: u32 = 3;
    /// Finalize and latch the digest.
    pub const FINALIZE: u32 = 4;
}

#[derive(Clone)]
enum Engine {
    Idle,
    Sha(Sha256),
    Sponge(Sponge),
    Hmac(Hmac),
}

/// The crypto accelerator device.
#[derive(Clone)]
pub struct CryptoAccel {
    engine: Engine,
    digest: [u8; 32],
    key: [u8; 32],
    busy: u64,
    /// Total cycles this device has spent busy (diagnostics/benches).
    pub busy_total: u64,
}

impl Default for CryptoAccel {
    fn default() -> Self {
        Self::new()
    }
}

impl CryptoAccel {
    /// Creates an idle accelerator.
    pub fn new() -> Self {
        CryptoAccel {
            engine: Engine::Idle,
            digest: [0; 32],
            key: [0; 32],
            busy: 0,
            busy_total: 0,
        }
    }

    fn start_busy(&mut self, cycles: u64) {
        self.busy += cycles;
        self.busy_total += cycles;
    }

    /// Host-side digest view (tests).
    pub fn digest(&self) -> [u8; 32] {
        self.digest
    }
}

impl Device for CryptoAccel {
    fn name(&self) -> &'static str {
        "crypto"
    }

    fn size(&self) -> u32 {
        0x1000
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        match off {
            regs::CTRL => Ok((self.busy > 0) as u32),
            regs::DATA => Ok(0),
            _ if (regs::DIGEST0..regs::DIGEST0 + 32).contains(&off) => {
                let i = ((off - regs::DIGEST0) / 4) as usize;
                let b = &self.digest[4 * i..4 * i + 4];
                Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            _ if (regs::KEY0..regs::KEY0 + 32).contains(&off) => Ok(0), // write-only
            _ => Err(BusError::Unmapped { addr: off }),
        }
    }

    fn write32(&mut self, off: u32, value: u32) -> Result<(), BusError> {
        match off {
            regs::CTRL => {
                match value {
                    cmd::INIT_SHA256 => {
                        self.engine = Engine::Sha(Sha256::new());
                        self.start_busy(INIT_CYCLES);
                    }
                    cmd::INIT_SPONGE => {
                        self.engine = Engine::Sponge(Sponge::new());
                        self.start_busy(INIT_CYCLES);
                    }
                    cmd::INIT_HMAC => {
                        self.engine = Engine::Hmac(Hmac::new(&self.key));
                        self.start_busy(INIT_CYCLES);
                    }
                    cmd::FINALIZE => {
                        let engine = std::mem::replace(&mut self.engine, Engine::Idle);
                        self.digest = match engine {
                            Engine::Idle => self.digest,
                            Engine::Sha(s) => s.finish(),
                            Engine::Sponge(s) => s.finish(),
                            Engine::Hmac(h) => h.finish(),
                        };
                        self.start_busy(FINALIZE_CYCLES);
                    }
                    _ => {} // unknown commands ignored
                }
                Ok(())
            }
            regs::DATA => {
                let bytes = value.to_le_bytes();
                match &mut self.engine {
                    Engine::Idle => {}
                    Engine::Sha(s) => s.update(&bytes),
                    Engine::Sponge(s) => s.update(&bytes),
                    Engine::Hmac(h) => h.update(&bytes),
                }
                self.start_busy(ABSORB_CYCLES);
                Ok(())
            }
            _ if (regs::KEY0..regs::KEY0 + 32).contains(&off) => {
                let i = ((off - regs::KEY0) / 4) as usize;
                self.key[4 * i..4 * i + 4].copy_from_slice(&value.to_le_bytes());
                Ok(())
            }
            _ if (regs::DIGEST0..regs::DIGEST0 + 32).contains(&off) => Ok(()), // ro
            _ => Err(BusError::Unmapped { addr: off }),
        }
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn write8(&mut self, off: u32, _value: u8) -> Result<(), BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn tick(&mut self, cycles: u64) -> Option<trustlite_mem::IrqRequest> {
        self.busy = self.busy.saturating_sub(cycles);
        None
    }

    fn is_tickable(&self) -> bool {
        true
    }

    // tick_hint stays `None`: the busy countdown raises no interrupt and
    // is only observable through MMIO, so catching up on access suffices.

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_crypto::{hmac_sha256, sha256, sponge_hash};

    fn absorb_words(dev: &mut CryptoAccel, data: &[u8]) {
        assert_eq!(data.len() % 4, 0);
        for chunk in data.chunks(4) {
            let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            dev.write32(regs::DATA, w).unwrap();
        }
    }

    fn read_digest(dev: &mut CryptoAccel) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..8 {
            let w = dev.read32(regs::DIGEST0 + 4 * i).unwrap();
            out[4 * i as usize..4 * i as usize + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    #[test]
    fn sha256_matches_software() {
        let mut dev = CryptoAccel::new();
        dev.write32(regs::CTRL, cmd::INIT_SHA256).unwrap();
        absorb_words(&mut dev, b"abcdefgh");
        dev.write32(regs::CTRL, cmd::FINALIZE).unwrap();
        assert_eq!(read_digest(&mut dev), sha256(b"abcdefgh"));
    }

    #[test]
    fn sponge_matches_software() {
        let mut dev = CryptoAccel::new();
        dev.write32(regs::CTRL, cmd::INIT_SPONGE).unwrap();
        absorb_words(&mut dev, b"measurement-data");
        dev.write32(regs::CTRL, cmd::FINALIZE).unwrap();
        assert_eq!(read_digest(&mut dev), sponge_hash(b"measurement-data"));
    }

    #[test]
    fn hmac_uses_key_registers() {
        let mut dev = CryptoAccel::new();
        let key = [0x42u8; 32];
        for i in 0..8 {
            let w =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
            dev.write32(regs::KEY0 + 4 * i as u32, w).unwrap();
        }
        dev.write32(regs::CTRL, cmd::INIT_HMAC).unwrap();
        absorb_words(&mut dev, b"challenge-nonce!");
        dev.write32(regs::CTRL, cmd::FINALIZE).unwrap();
        assert_eq!(
            read_digest(&mut dev),
            hmac_sha256(&key, b"challenge-nonce!")
        );
    }

    #[test]
    fn busy_flag_counts_down() {
        let mut dev = CryptoAccel::new();
        dev.write32(regs::CTRL, cmd::INIT_SHA256).unwrap();
        assert_eq!(dev.read32(regs::CTRL).unwrap(), 1, "busy after init");
        dev.tick(INIT_CYCLES);
        assert_eq!(dev.read32(regs::CTRL).unwrap(), 0, "idle again");
        dev.write32(regs::CTRL, cmd::FINALIZE).unwrap();
        dev.tick(FINALIZE_CYCLES - 1);
        assert_eq!(dev.read32(regs::CTRL).unwrap(), 1);
        dev.tick(1);
        assert_eq!(dev.read32(regs::CTRL).unwrap(), 0);
    }

    #[test]
    fn key_registers_not_readable() {
        let mut dev = CryptoAccel::new();
        dev.write32(regs::KEY0, 0xdead_beef).unwrap();
        assert_eq!(dev.read32(regs::KEY0).unwrap(), 0);
    }

    #[test]
    fn digest_registers_read_only() {
        let mut dev = CryptoAccel::new();
        dev.write32(regs::CTRL, cmd::INIT_SHA256).unwrap();
        dev.write32(regs::CTRL, cmd::FINALIZE).unwrap();
        let before = read_digest(&mut dev);
        dev.write32(regs::DIGEST0, 0x1234).unwrap();
        assert_eq!(read_digest(&mut dev), before);
    }

    #[test]
    fn unknown_command_ignored_and_bad_offset_errors() {
        let mut dev = CryptoAccel::new();
        dev.write32(regs::CTRL, 0xff).unwrap();
        assert_eq!(dev.read32(regs::CTRL).unwrap(), 0, "no busy from bad cmd");
        assert!(dev.read32(0x800).is_err());
    }
}
