//! The fused key store.
//!
//! SMART gates its attestation key by instruction-pointer checks on the
//! memory bus; TrustLite generalizes this: the key simply lives at an MMIO
//! address and an EA-MPU rule grants read access to exactly one code
//! region (the attestation trustlet). This device holds a small number of
//! 256-bit key slots programmed at "manufacture time" (host API) and
//! readable — never writable — over MMIO.
//!
//! Register map: slot `i` occupies 32 bytes at offset `i * 0x20`.

use std::any::Any;

use trustlite_mem::{BusError, Device};

/// Size of one key slot in bytes.
pub const SLOT_BYTES: u32 = 32;

/// The key-store device.
#[derive(Debug, Clone)]
pub struct KeyStore {
    slots: Vec<[u8; 32]>,
}

impl KeyStore {
    /// Creates a key store with `slots` zeroed key slots.
    pub fn new(slots: usize) -> Self {
        KeyStore {
            slots: vec![[0; 32]; slots],
        }
    }

    /// Manufacture-time key programming (host side only).
    pub fn provision(&mut self, slot: usize, key: [u8; 32]) -> Result<(), usize> {
        match self.slots.get_mut(slot) {
            Some(s) => {
                *s = key;
                Ok(())
            }
            None => Err(slot),
        }
    }

    /// Host-side key view (verifier side of attestation protocols).
    pub fn key(&self, slot: usize) -> Option<[u8; 32]> {
        self.slots.get(slot).copied()
    }

    /// Fault-injection hook: XORs `mask` into every byte of `slot`,
    /// modeling a mis-provisioned or fuse-damaged key. A zero mask is
    /// rejected (it would silently model nothing). Returns the slot
    /// index on out-of-range, like [`KeyStore::provision`].
    pub fn corrupt(&mut self, slot: usize, mask: u8) -> Result<(), usize> {
        assert!(mask != 0, "a zero mask does not corrupt anything");
        match self.slots.get_mut(slot) {
            Some(s) => {
                for b in s.iter_mut() {
                    *b ^= mask;
                }
                Ok(())
            }
            None => Err(slot),
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl Device for KeyStore {
    fn name(&self) -> &'static str {
        "keystore"
    }

    fn size(&self) -> u32 {
        0x1000
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        let slot = (off / SLOT_BYTES) as usize;
        let within = (off % SLOT_BYTES) as usize;
        match self.slots.get(slot) {
            Some(key) => {
                let b = &key[within..within + 4];
                Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            None => Err(BusError::Unmapped { addr: off }),
        }
    }

    fn write32(&mut self, off: u32, _value: u32) -> Result<(), BusError> {
        Err(BusError::ReadOnly { addr: off })
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn write8(&mut self, off: u32, _value: u8) -> Result<(), BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioned_key_readable_word_wise() {
        let mut ks = KeyStore::new(2);
        let mut key = [0u8; 32];
        key[..4].copy_from_slice(&[1, 2, 3, 4]);
        key[28..].copy_from_slice(&[5, 6, 7, 8]);
        ks.provision(1, key).unwrap();
        assert_eq!(ks.read32(SLOT_BYTES).unwrap(), 0x0403_0201);
        assert_eq!(ks.read32(SLOT_BYTES + 28).unwrap(), 0x0807_0605);
        assert_eq!(ks.read32(0).unwrap(), 0, "slot 0 untouched");
    }

    #[test]
    fn corrupt_perturbs_and_round_trips() {
        let mut ks = KeyStore::new(2);
        let key = [0xa5u8; 32];
        ks.provision(0, key).unwrap();
        ks.corrupt(0, 0xff).unwrap();
        assert_eq!(ks.key(0), Some([0x5au8; 32]));
        ks.corrupt(0, 0xff).unwrap();
        assert_eq!(ks.key(0), Some(key), "XOR corruption is involutive");
        assert_eq!(ks.corrupt(9, 1), Err(9));
    }

    #[test]
    fn runtime_writes_rejected() {
        let mut ks = KeyStore::new(1);
        assert!(matches!(ks.write32(0, 1), Err(BusError::ReadOnly { .. })));
    }

    #[test]
    fn out_of_range_slot() {
        let mut ks = KeyStore::new(1);
        assert!(ks.read32(SLOT_BYTES).is_err());
        assert_eq!(ks.provision(5, [0; 32]), Err(5));
        assert_eq!(ks.key(5), None);
    }

    #[test]
    fn byte_access_rejected() {
        let mut ks = KeyStore::new(1);
        assert!(matches!(ks.read8(0), Err(BusError::BadWidth { .. })));
    }
}
