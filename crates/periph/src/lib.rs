//! MMIO peripherals of the simulated TrustLite SoC.
//!
//! The paper's platform (Figure 1) integrates an alarm timer, I/O
//! interfaces and optional cryptographic accelerators inside the SoC
//! boundary; all are reached through memory-mapped I/O, which is exactly
//! what lets the EA-MPU grant *exclusive peripheral access* to individual
//! trustlets (Section 3.3). This crate provides:
//!
//! * [`Timer`] — a programmable alarm timer with the Figure 3 register set
//!   (`period`, `handler(ISR)`): it can be owned by the OS for preemptive
//!   scheduling, or assigned to a trustlet, or have its handler pointed at
//!   a trusted ISR so that not even the OS can suppress the alarm;
//! * [`Uart`] — a byte-oriented console used by examples and tests;
//! * [`CryptoAccel`] — a hash/MAC engine (SHA-256, the Spongent-style
//!   sponge, HMAC) with a small FIFO register interface, standing in for
//!   the hardware hash the paper's base-cost margin absorbs;
//! * [`KeyStore`] — fused key slots readable over MMIO, so that key access
//!   is governed by EA-MPU rules exactly like any other memory (this is
//!   how the SMART-style instantiation gates its attestation key).

pub mod crypto_accel;
pub mod keystore;
pub mod rng;
pub mod timer;
pub mod uart;

pub use crypto_accel::CryptoAccel;
pub use keystore::KeyStore;
pub use rng::Rng;
pub use timer::Timer;
pub use uart::{Uart, UartTap};
