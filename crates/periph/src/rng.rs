//! A random-number-generator peripheral.
//!
//! Trusted IPC (Section 4.2.2) needs fresh nonces inside trustlets. Real
//! SoCs of this class provide a TRNG block; the simulation uses a seeded
//! deterministic generator so that whole runs replay bit-identically.
//!
//! Register map: `+0 VALUE` (ro) — each read returns the next 32-bit
//! value.

use std::any::Any;

use trustlite_crypto::XorShift64;
use trustlite_mem::{BusError, Device};

/// The RNG device.
#[derive(Debug, Clone)]
pub struct Rng {
    rng: XorShift64,
    /// Values drawn so far (diagnostics).
    pub draws: u64,
}

impl Rng {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        Rng {
            rng: XorShift64::new(seed),
            draws: 0,
        }
    }

    /// Restarts the generator from `seed` (host-side divergence hook:
    /// forked fleet devices get fresh, per-device randomness streams).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = XorShift64::new(seed);
        self.draws = 0;
    }
}

impl Device for Rng {
    fn name(&self) -> &'static str {
        "rng"
    }

    fn size(&self) -> u32 {
        0x1000
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        match off {
            0 => {
                self.draws += 1;
                Ok(self.rng.next_u32())
            }
            _ => Err(BusError::Unmapped { addr: off }),
        }
    }

    fn write32(&mut self, off: u32, _value: u32) -> Result<(), BusError> {
        Err(BusError::ReadOnly { addr: off })
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn write8(&mut self, off: u32, _value: u8) -> Result<(), BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successive_reads_differ() {
        let mut r = Rng::new(1);
        let a = r.read32(0).unwrap();
        let b = r.read32(0).unwrap();
        assert_ne!(a, b);
        assert_eq!(r.draws, 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..10 {
            assert_eq!(a.read32(0).unwrap(), b.read32(0).unwrap());
        }
    }

    #[test]
    fn write_and_bad_offset_rejected() {
        let mut r = Rng::new(1);
        assert!(matches!(r.write32(0, 1), Err(BusError::ReadOnly { .. })));
        assert!(r.read32(8).is_err());
    }
}
