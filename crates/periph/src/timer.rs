//! The platform alarm timer.
//!
//! Register map (word offsets), following the paper's Figure 3 which gives
//! the timer a `period` and a `handler(ISR)` register:
//!
//! ```text
//! +0   CTRL     bit0 enable, bit1 auto-reload
//! +4   PERIOD   countdown length in CPU cycles
//! +8   HANDLER  ISR address; 0 = deliver through the IDT
//! +12  COUNT    (ro) remaining cycles
//! +16  LINE     interrupt line number (0..7)
//! ```
//!
//! By programming `HANDLER`, the owner of this peripheral decides *which
//! code* gains control on expiry — the paper's example of setting up a
//! device "to leverage or disable such an OS scheduler" (Section 3.3), or
//! of a trustlet keeping a watchdog the OS cannot suppress.

use std::any::Any;

use trustlite_mem::{BusError, Device, IrqRequest};

/// CTRL bit: timer running.
pub const CTRL_ENABLE: u32 = 1;
/// CTRL bit: reload `PERIOD` on expiry instead of stopping.
pub const CTRL_AUTO_RELOAD: u32 = 2;

/// Register offsets.
pub mod regs {
    /// Control register.
    pub const CTRL: u32 = 0;
    /// Period register.
    pub const PERIOD: u32 = 4;
    /// Handler (ISR pointer) register.
    pub const HANDLER: u32 = 8;
    /// Remaining-count register (read-only).
    pub const COUNT: u32 = 12;
    /// Interrupt line register.
    pub const LINE: u32 = 16;
}

/// The programmable alarm timer.
#[derive(Debug, Clone)]
pub struct Timer {
    ctrl: u32,
    period: u32,
    handler: u32,
    count: u64,
    line: u32,
    /// Number of expiries since reset (host-side diagnostic).
    pub fired: u64,
}

impl Timer {
    /// Creates a stopped timer on interrupt line `line`.
    pub fn new(line: u8) -> Self {
        Timer {
            ctrl: 0,
            period: 0,
            handler: 0,
            count: 0,
            line: line as u32,
            fired: 0,
        }
    }

    fn enabled(&self) -> bool {
        self.ctrl & CTRL_ENABLE != 0
    }
}

impl Device for Timer {
    fn name(&self) -> &'static str {
        "timer"
    }

    fn size(&self) -> u32 {
        0x1000
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        match off {
            regs::CTRL => Ok(self.ctrl),
            regs::PERIOD => Ok(self.period),
            regs::HANDLER => Ok(self.handler),
            regs::COUNT => Ok(self.count as u32),
            regs::LINE => Ok(self.line),
            _ => Err(BusError::Unmapped { addr: off }),
        }
    }

    fn write32(&mut self, off: u32, value: u32) -> Result<(), BusError> {
        match off {
            regs::CTRL => {
                let was_enabled = self.enabled();
                self.ctrl = value & (CTRL_ENABLE | CTRL_AUTO_RELOAD);
                if self.enabled() && !was_enabled {
                    self.count = self.period as u64;
                }
            }
            regs::PERIOD => self.period = value,
            regs::HANDLER => self.handler = value,
            regs::COUNT => {} // read-only, write dropped
            regs::LINE => self.line = value & 7,
            _ => return Err(BusError::Unmapped { addr: off }),
        }
        Ok(())
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn write8(&mut self, off: u32, _value: u8) -> Result<(), BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn tick(&mut self, cycles: u64) -> Option<IrqRequest> {
        if !self.enabled() {
            return None;
        }
        if self.count > cycles {
            self.count -= cycles;
            return None;
        }
        self.fired += 1;
        if self.ctrl & CTRL_AUTO_RELOAD != 0 {
            // Carry the overshoot into the next period (bounded below).
            let overshoot = cycles - self.count;
            let period = self.period.max(1) as u64;
            self.count = period.saturating_sub(overshoot % period).max(1);
        } else {
            self.ctrl &= !CTRL_ENABLE;
            self.count = 0;
        }
        Some(IrqRequest {
            line: self.line as u8,
            handler: if self.handler != 0 {
                Some(self.handler)
            } else {
                None
            },
        })
    }

    fn is_tickable(&self) -> bool {
        true
    }

    fn tick_hint(&self) -> Option<u64> {
        // Pure countdown until the next fire; the bus may defer ticking
        // until `count` cycles have accumulated.
        if self.enabled() {
            Some(self.count)
        } else {
            None
        }
    }

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(t: &mut Timer, period: u32, flags: u32) {
        t.write32(regs::PERIOD, period).unwrap();
        t.write32(regs::CTRL, CTRL_ENABLE | flags).unwrap();
    }

    #[test]
    fn one_shot_fires_once() {
        let mut t = Timer::new(0);
        start(&mut t, 10, 0);
        assert_eq!(t.tick(5), None);
        let irq = t.tick(5).expect("fires at expiry");
        assert_eq!(irq.line, 0);
        assert_eq!(irq.handler, None);
        assert_eq!(t.tick(100), None, "one-shot disarms");
        assert_eq!(t.read32(regs::CTRL).unwrap() & CTRL_ENABLE, 0);
    }

    #[test]
    fn auto_reload_fires_repeatedly() {
        let mut t = Timer::new(2);
        start(&mut t, 4, CTRL_AUTO_RELOAD);
        let mut fires = 0;
        for _ in 0..10 {
            if t.tick(4).is_some() {
                fires += 1;
            }
        }
        assert_eq!(fires, 10);
        assert_eq!(t.fired, 10);
    }

    #[test]
    fn handler_register_vectors_the_irq() {
        let mut t = Timer::new(0);
        t.write32(regs::HANDLER, 0x1234).unwrap();
        start(&mut t, 1, 0);
        let irq = t.tick(1).expect("fires");
        assert_eq!(irq.handler, Some(0x1234));
    }

    #[test]
    fn count_visible_and_read_only() {
        let mut t = Timer::new(0);
        start(&mut t, 100, 0);
        t.tick(30);
        assert_eq!(t.read32(regs::COUNT).unwrap(), 70);
        t.write32(regs::COUNT, 5).unwrap();
        assert_eq!(t.read32(regs::COUNT).unwrap(), 70, "write dropped");
    }

    #[test]
    fn byte_access_rejected() {
        let mut t = Timer::new(0);
        assert!(matches!(t.read8(0), Err(BusError::BadWidth { .. })));
        assert!(matches!(t.write8(4, 1), Err(BusError::BadWidth { .. })));
    }

    #[test]
    fn bad_register_offsets() {
        let mut t = Timer::new(0);
        assert!(t.read32(0x20).is_err());
        assert!(t.write32(0x100, 0).is_err());
    }

    #[test]
    fn disabled_timer_never_fires() {
        let mut t = Timer::new(0);
        t.write32(regs::PERIOD, 1).unwrap();
        assert_eq!(t.tick(1000), None);
    }
}
