//! A byte-oriented UART console.
//!
//! Register map:
//!
//! ```text
//! +0  TX      (wo) transmit one byte (low 8 bits)
//! +4  RX      (ro) next received byte, or 0 when empty
//! +8  STATUS  (ro) bit0 rx available, bit1 tx ready (always set)
//! ```
//!
//! The paper motivates *secure user I/O* as a key peripheral usage
//! (Sections 2.3 and 3.3); in examples a trustlet is given exclusive MPU
//! access to this device so that the OS can neither observe nor forge
//! console traffic.

use std::any::Any;
use std::collections::VecDeque;

use trustlite_mem::{BusError, Device, IrqRequest};

/// Register offsets.
pub mod regs {
    /// Transmit register.
    pub const TX: u32 = 0;
    /// Receive register.
    pub const RX: u32 = 4;
    /// Status register.
    pub const STATUS: u32 = 8;
}

/// Status bit: a received byte is available.
pub const STATUS_RX_AVAIL: u32 = 1;
/// Status bit: the transmitter accepts a byte (always true here).
pub const STATUS_TX_READY: u32 = 2;

/// A host-side observer invoked once per transmitted byte (live console
/// streaming, protocol scoring). Taps are arbitrary closures over host
/// state and therefore cannot be deep-copied: a tapped UART refuses
/// `snapshot()`, naming itself in the resulting error.
pub type UartTap = Box<dyn FnMut(u8) + Send>;

/// The UART device.
#[derive(Default)]
pub struct Uart {
    tx: Vec<u8>,
    rx: VecDeque<u8>,
    irq_line: Option<u8>,
    irq_raised: bool,
    tap: Option<UartTap>,
}

impl std::fmt::Debug for Uart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Uart")
            .field("tx", &self.tx)
            .field("rx", &self.rx)
            .field("irq_line", &self.irq_line)
            .field("irq_raised", &self.irq_raised)
            .field("tap", &self.tap.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl Clone for Uart {
    /// Clones the serializable state; the tap (if any) stays with the
    /// original. `snapshot()` refuses on tapped UARTs before this could
    /// matter.
    fn clone(&self) -> Self {
        Uart {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            irq_line: self.irq_line,
            irq_raised: self.irq_raised,
            tap: None,
        }
    }
}

impl Uart {
    /// Creates an idle UART (polled mode; no receive interrupt).
    pub fn new() -> Self {
        Uart::default()
    }

    /// Creates a UART that raises an interrupt on `line` whenever
    /// received data becomes available (level-style: re-raised after the
    /// receive queue drains and refills).
    pub fn with_irq(line: u8) -> Self {
        Uart {
            irq_line: Some(line),
            ..Uart::default()
        }
    }

    /// Host side: drains everything transmitted so far.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.tx)
    }

    /// Host side: view of the transmitted bytes without draining.
    pub fn output(&self) -> &[u8] {
        &self.tx
    }

    /// Host side: queues bytes for the simulated software to receive.
    pub fn inject_input(&mut self, bytes: &[u8]) {
        self.rx.extend(bytes);
    }

    /// Attaches a host observer called once per transmitted byte. A
    /// tapped UART is no longer snapshottable (the closure captures
    /// arbitrary host state); `snapshot()` refuses with this device's
    /// name until [`Uart::clear_tap`] is called.
    pub fn set_tap(&mut self, tap: UartTap) {
        self.tap = Some(tap);
    }

    /// Detaches the host observer, restoring snapshottability.
    pub fn clear_tap(&mut self) {
        self.tap = None;
    }
}

impl Device for Uart {
    fn name(&self) -> &'static str {
        "uart"
    }

    fn size(&self) -> u32 {
        0x1000
    }

    fn read32(&mut self, off: u32) -> Result<u32, BusError> {
        match off {
            regs::TX => Ok(0),
            regs::RX => Ok(self.rx.pop_front().unwrap_or(0) as u32),
            regs::STATUS => {
                let mut s = STATUS_TX_READY;
                if !self.rx.is_empty() {
                    s |= STATUS_RX_AVAIL;
                }
                Ok(s)
            }
            _ => Err(BusError::Unmapped { addr: off }),
        }
    }

    fn write32(&mut self, off: u32, value: u32) -> Result<(), BusError> {
        match off {
            regs::TX => {
                let byte = value as u8;
                self.tx.push(byte);
                if let Some(tap) = self.tap.as_mut() {
                    tap(byte);
                }
                Ok(())
            }
            regs::RX | regs::STATUS => Ok(()),
            _ => Err(BusError::Unmapped { addr: off }),
        }
    }

    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn write8(&mut self, off: u32, _value: u8) -> Result<(), BusError> {
        Err(BusError::BadWidth { addr: off })
    }

    fn tick(&mut self, _cycles: u64) -> Option<IrqRequest> {
        let line = self.irq_line?;
        if self.rx.is_empty() {
            self.irq_raised = false;
            return None;
        }
        if self.irq_raised {
            return None;
        }
        self.irq_raised = true;
        Some(IrqRequest {
            line,
            handler: None,
        })
    }

    fn is_tickable(&self) -> bool {
        true
    }

    fn tick_hint(&self) -> Option<u64> {
        // The RX interrupt is level-triggered by queue state, not time:
        // demand an immediate tick whenever the line state must change
        // (raise when data is waiting, clear when drained); otherwise
        // time alone changes nothing.
        self.irq_line?;
        if self.rx.is_empty() == self.irq_raised {
            Some(0)
        } else {
            None
        }
    }

    fn snapshot(&self) -> Option<Box<dyn Device>> {
        if self.tap.is_some() {
            return None;
        }
        Some(Box::new(self.clone()))
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_collects_bytes() {
        let mut u = Uart::new();
        for b in b"hi" {
            u.write32(regs::TX, *b as u32).unwrap();
        }
        assert_eq!(u.take_output(), b"hi");
        assert!(u.take_output().is_empty(), "drained");
    }

    #[test]
    fn rx_consumes_injected_input() {
        let mut u = Uart::new();
        u.inject_input(b"ok");
        assert_eq!(u.read32(regs::STATUS).unwrap() & STATUS_RX_AVAIL, 1);
        assert_eq!(u.read32(regs::RX).unwrap(), b'o' as u32);
        assert_eq!(u.read32(regs::RX).unwrap(), b'k' as u32);
        assert_eq!(u.read32(regs::STATUS).unwrap() & STATUS_RX_AVAIL, 0);
        assert_eq!(u.read32(regs::RX).unwrap(), 0, "empty reads zero");
    }

    #[test]
    fn only_low_byte_transmitted() {
        let mut u = Uart::new();
        u.write32(regs::TX, 0x1234_5641).unwrap();
        assert_eq!(u.output(), b"A");
    }

    #[test]
    fn irq_raised_once_per_data_burst() {
        let mut u = Uart::with_irq(1);
        assert_eq!(u.tick(1), None, "idle");
        u.inject_input(b"ab");
        let irq = u.tick(1).expect("raised");
        assert_eq!(irq.line, 1);
        assert_eq!(u.tick(1), None, "not re-raised while pending");
        u.read32(regs::RX).unwrap();
        u.read32(regs::RX).unwrap();
        assert_eq!(u.tick(1), None, "drained");
        u.inject_input(b"c");
        assert!(u.tick(1).is_some(), "re-raised after refill");
    }

    #[test]
    fn polled_uart_never_interrupts() {
        let mut u = Uart::new();
        u.inject_input(b"x");
        assert_eq!(u.tick(100), None);
    }

    #[test]
    fn tap_observes_tx_and_blocks_snapshot() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut u = Uart::new();
        assert!(u.snapshot().is_some(), "untapped UART snapshots");
        let sink = Arc::clone(&seen);
        u.set_tap(Box::new(move |b| sink.lock().unwrap().push(b)));
        for b in b"hi" {
            u.write32(regs::TX, *b as u32).unwrap();
        }
        assert_eq!(*seen.lock().unwrap(), b"hi");
        assert_eq!(u.output(), b"hi", "tap observes, does not consume");
        assert!(u.snapshot().is_none(), "tapped UART refuses snapshot");
        u.clear_tap();
        assert!(u.snapshot().is_some(), "snapshottable again");
    }

    #[test]
    fn bad_offsets_and_widths() {
        let mut u = Uart::new();
        assert!(u.read32(0xc).is_err());
        assert!(matches!(u.read8(0), Err(BusError::BadWidth { .. })));
    }
}
