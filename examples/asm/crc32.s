; crc32.s — bitwise CRC-32 (IEEE, reflected) over a short message.
    li   r0, 0xffffffff   ; crc
    la   r1, msg
    la   r2, msg_end
byteloop:
    bgeu r1, r2, finish
    lb   r3, [r1]
    xor  r0, r0, r3
    li   r4, 8            ; bit counter
bitloop:
    li   r5, 0
    bge  r4, r5, bit_body
bit_body:
    andi r6, r0, 1
    shri r0, r0, 1
    li   r7, 0
    beq  r6, r7, no_poly
    li   r6, 0xedb88320
    xor  r0, r0, r6
no_poly:
    addi r4, r4, -1
    li   r5, 0
    bne  r4, r5, bitloop
    addi r1, r1, 1
    jmp  byteloop
finish:
    not  r0, r0
    li   r5, 0x10000000
    sw   [r5], r0
    halt
msg:     .ascii "123456789"
msg_end:
