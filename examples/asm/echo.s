; echo.s — copy UART input to UART output until the line goes idle.
    li   r1, 0x20002000   ; UART base (TX +0, RX +4, STATUS +8)
loop:
    lw   r2, [r1+8]       ; STATUS
    andi r2, r2, 1        ; rx available?
    li   r3, 0
    beq  r2, r3, done
    lw   r4, [r1+4]       ; RX
    sw   [r1], r4         ; TX
    jmp  loop
done:
    halt
