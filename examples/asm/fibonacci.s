; fibonacci.s — iterative fib(24); result left in r0 and stored to SRAM.
    li   r0, 0            ; fib(0)
    li   r1, 1            ; fib(1)
    li   r2, 24           ; n
    li   r3, 0            ; i
loop:
    bge  r3, r2, done
    add  r4, r0, r1       ; next
    mov  r0, r1
    mov  r1, r4
    addi r3, r3, 1
    jmp  loop
done:
    li   r5, 0x10000000
    sw   [r5], r0
    halt
