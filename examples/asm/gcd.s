; gcd.s — Euclid's algorithm with divu/remu; gcd(1071, 462) -> r0.
    li   r1, 1071
    li   r2, 462
loop:
    li   r3, 0
    beq  r2, r3, done
    remu r4, r1, r2       ; r4 = r1 mod r2
    mov  r1, r2
    mov  r2, r4
    jmp  loop
done:
    mov  r0, r1
    li   r5, 0x10000000
    sw   [r5], r0
    halt
