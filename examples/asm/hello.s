; hello.s — print a string over the UART.
; Run with: cargo run -p trustlite --bin tlrun -- examples/asm/hello.s
    li   r1, 0x20002000   ; UART TX register
    la   r2, msg
    la   r3, msg_end
loop:
    bgeu r2, r3, done
    lb   r6, [r2]
    sw   [r1], r6
    addi r2, r2, 1
    jmp  loop
done:
    halt
msg:     .ascii "Hello, SP32!\n"
msg_end:
