; sieve.s — count the primes below 100 with a byte sieve in SRAM.
    li   r1, 0x10000000   ; sieve base (bytes, 0 = maybe prime)
    li   r2, 100          ; limit
; clear the sieve
    li   r3, 0
    li   r4, 0
clear:
    bge  r3, r2, sieve
    add  r5, r1, r3
    sb   [r5], r4
    addi r3, r3, 1
    jmp  clear
sieve:
    li   r3, 2            ; candidate p
outer:
    bge  r3, r2, count
    add  r5, r1, r3
    lb   r6, [r5]
    li   r7, 0
    bne  r6, r7, next     ; already composite
; mark multiples starting at 2p
    add  r4, r3, r3
mark:
    bge  r4, r2, next
    add  r5, r1, r4
    li   r6, 1
    sb   [r5], r6
    add  r4, r4, r3
    jmp  mark
next:
    addi r3, r3, 1
    jmp  outer
count:
    li   r0, 0            ; prime counter
    li   r3, 2
tally:
    bge  r3, r2, done
    add  r5, r1, r3
    lb   r6, [r5]
    li   r7, 0
    bne  r6, r7, skip
    addi r0, r0, 1
skip:
    addi r3, r3, 1
    jmp  tally
done:
    li   r5, 0x10000100
    sw   [r5], r0
    halt
