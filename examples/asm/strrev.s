; strrev.s — reverse a string in place using the stack, print it.
    li   sp, 0x10001000
    li   r1, 0x20002000   ; UART TX
    la   r2, msg
    la   r3, msg_end
; push all characters
    mov  r4, r2
pushloop:
    bgeu r4, r3, popsetup
    lb   r5, [r4]
    push r5
    addi r4, r4, 1
    jmp  pushloop
popsetup:
    sub  r6, r3, r2       ; length
    li   r7, 0
poploop:
    bge  r7, r6, done
    pop  r5
    sw   [r1], r5
    addi r7, r7, 1
    jmp  poploop
done:
    halt
msg:     .ascii "stressed"
msg_end:
