//! The paper's motivating application (Figure 1 shows an "ePay" trustlet):
//! a payment service whose balance lives in EA-MPU-protected memory and
//! whose user-confirmation dialog runs over an *exclusively owned* UART —
//! the trusted-path transaction confirmation of Section 2.3. The
//! untrusted OS requests payments through the `call()` entry but can
//! neither forge the confirmation prompt, fake the user's answer, nor
//! touch the balance.
//!
//! Run: `cargo run -p trustlite-bench --example epay`

use trustlite::platform::PlatformBuilder;
use trustlite::runtime::{emit_uart_print, emit_uart_print_hex_byte};
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite_cpu::{vectors, HaltReason, RunExit};
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_periph::{uart, Uart};

const INITIAL_BALANCE: u32 = 100;

fn build() -> (trustlite::Platform, trustlite::TrustletPlan) {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("epay", 0x600, 0x100, 0x100);
    let balance_addr = plan.data_base;

    let mut t = plan.begin_program();
    {
        let a = &mut t.asm;
        a.label("main");
        // One-time provisioning: set the opening balance.
        a.li(Reg::R1, balance_addr);
        a.li(Reg::R0, INITIAL_BALANCE);
        a.sw(Reg::R1, 0, Reg::R0);
        a.halt();

        // call(type = DATA, amount, reply): the payment request.
        a.label("call_entry");
        a.li(Reg::R6, plan.sp_slot);
        a.lw(Reg::Sp, Reg::R6, 0);
        a.mov(Reg::R4, Reg::R1); // amount
        a.push(Reg::R2); // reply continuation
                         // Trusted path: prompt the user on the exclusively owned UART.
        emit_uart_print(a, "PAY 0x");
        emit_uart_print_hex_byte(a, Reg::R4);
        emit_uart_print(a, "? [y/n] ");
        // Read the user's answer from the UART (exclusive too).
        a.li(Reg::R6, map::UART_MMIO_BASE);
        a.label("wait_key");
        a.lw(Reg::R7, Reg::R6, uart::regs::STATUS as i16);
        a.andi(Reg::R7, Reg::R7, 1);
        a.li(Reg::R5, 0);
        a.beq(Reg::R7, Reg::R5, "wait_key");
        a.lw(Reg::R7, Reg::R6, uart::regs::RX as i16);
        a.li(Reg::R5, b'y' as u32);
        a.bne(Reg::R7, Reg::R5, "declined");
        // Check funds and debit.
        a.li(Reg::R1, balance_addr);
        a.lw(Reg::R2, Reg::R1, 0);
        a.bltu(Reg::R2, Reg::R4, "declined");
        a.sub(Reg::R2, Reg::R2, Reg::R4);
        a.sw(Reg::R1, 0, Reg::R2);
        emit_uart_print(a, "APPROVED\n");
        a.li(Reg::R1, 1); // result
        a.jmp("reply");
        a.label("declined");
        emit_uart_print(a, "DECLINED\n");
        a.li(Reg::R1, 0);
        a.label("reply");
        a.pop(Reg::R2);
        a.jr(Reg::R2);
    }
    let img = t.finish().expect("assembles");
    b.add_trustlet(
        &plan,
        img,
        TrustletOptions {
            peripherals: vec![PeriphGrant {
                base: map::UART_MMIO_BASE,
                size: map::PERIPH_MMIO_SIZE,
                perms: Perms::RW,
            }],
            ..Default::default()
        },
    )
    .expect("registers");

    // The untrusted OS: asks for a payment, records the result, and then
    // tries to steal the balance directly.
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    let call_entry = plan.call_entry();
    {
        let a = &mut os.asm;
        a.label("main");
        a.li(Reg::Sp, stack_top);
        a.li(Reg::R0, trustlite::ipc::msg_type::DATA);
        a.li(Reg::R1, 0x25); // amount
        a.la(Reg::R2, "paid");
        a.li(Reg::R5, call_entry);
        a.jr(Reg::R5);
        a.label("paid");
        a.mov(Reg::R6, Reg::R1); // keep the result
                                 // Now try to set the balance back up (must fault).
        a.li(Reg::R1, balance_addr);
        a.li(Reg::R0, 0xffff);
        a.sw(Reg::R1, 0, Reg::R0);
        a.halt();
        a.label("fault_handler");
        a.halt();
    }
    let os_img = os.finish().expect("assembles");
    b.set_os(os_img, &[(vectors::VEC_MPU_FAULT, "fault_handler")]);
    (b.build().expect("boots"), plan)
}

fn run_payment(answer: u8) -> (trustlite::Platform, trustlite::TrustletPlan, String) {
    let (mut p, plan) = build();
    // Provision the balance.
    p.start_trustlet("epay").expect("starts");
    p.run(10_000);
    // The user's (future) keypress on the trusted input path.
    p.machine
        .sys
        .bus
        .device_mut::<Uart>("uart")
        .expect("uart present")
        .inject_input(&[answer]);
    // Run the OS payment flow.
    p.machine.halted = None;
    p.machine.regs.ip = p.os.entry;
    p.machine.prev_ip = p.os.entry;
    let exit = p.run(200_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    let transcript = String::from_utf8_lossy(&p.uart_output()).to_string();
    (p, plan, transcript)
}

fn main() {
    // Approved payment.
    let (mut p, plan, transcript) = run_payment(b'y');
    println!("user answers 'y':");
    println!("  trusted console: {transcript:?}");
    let balance = p
        .machine
        .sys
        .hw_read32(plan.data_base)
        .expect("readable by host");
    println!("  balance: {INITIAL_BALANCE} -> {balance}");
    assert_eq!(balance, INITIAL_BALANCE - 0x25);
    assert!(transcript.contains("APPROVED"));
    assert_eq!(p.machine.regs.get(Reg::R6), 1, "OS saw result 1");
    // The OS's direct write to the balance faulted.
    assert_eq!(
        p.machine.exc_log.last().expect("fault recorded").vector,
        vectors::VEC_MPU_FAULT
    );
    println!("  OS attempt to write the balance directly: MPU fault");
    println!();

    // Declined payment.
    let (mut p, plan, transcript) = run_payment(b'n');
    println!("user answers 'n':");
    println!("  trusted console: {transcript:?}");
    let balance = p
        .machine
        .sys
        .hw_read32(plan.data_base)
        .expect("readable by host");
    println!("  balance: {INITIAL_BALANCE} -> {balance}");
    assert_eq!(balance, INITIAL_BALANCE, "no debit without consent");
    assert!(transcript.contains("DECLINED"));
    assert_eq!(p.machine.regs.get(Reg::R6), 0, "OS saw result 0");
    println!();
    println!("epay OK");
}
