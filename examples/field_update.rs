//! Field updates (paper Sections 2.3, 5.3, 6) with A/B slots: the
//! factory image in PROM is slot A — always bootable, so the device can
//! never brick — and a staged image in untrusted bulk DRAM is slot B,
//! guarded by a CRC-32 and a monotonic version word in retained RAM.
//! Staging needs no MPU privilege at all (slot B lives in untrusted
//! memory); trust is established *after* the reboot, when the Secure
//! Loader has re-measured whatever image it chose and the operator
//! confirms only against an attested re-measurement. Anything that goes
//! wrong — bit rot in the staged image, a replayed stale version — rolls
//! the device back to slot A, with the verdict retained in a boot log
//! that survives warm resets. SMART's mask-ROM routine cannot be
//! updated at all; TrustLite's programmable protection is what makes
//! this whole flow possible.
//!
//! Run: `cargo run -p trustlite-bench --example field_update`

use trustlite::attest::{self, Challenge};
use trustlite::platform::PlatformBuilder;
use trustlite::spec::TrustletOptions;
use trustlite::update::{BootVerdict, SlotState};
use trustlite_baselines::SmartDevice;
use trustlite_isa::Reg;

const KEY: [u8; 32] = [0x42; 32];

/// Returns the image with the `li r0, <version>` word swapped — the
/// same firmware, one release later.
fn patch_version(original: &[u8], offset: usize, version: i16) -> Vec<u8> {
    let word = trustlite_isa::encode(trustlite_isa::Instr::Movi {
        rd: Reg::R0,
        imm: version,
    });
    let mut out = original.to_vec();
    out[offset..offset + 4].copy_from_slice(&word.to_le_bytes());
    out
}

fn report_version(p: &mut trustlite::Platform, data_base: u32) -> u32 {
    p.machine.halted = None;
    p.start_trustlet("service").expect("starts");
    p.run(10_000);
    p.machine.sys.hw_read32(data_base).expect("readable")
}

fn main() {
    let mut b = PlatformBuilder::new();
    b.platform_key(KEY);
    let plan = b.plan_trustlet("service", 0x200, 0x80, 0x80);

    // The service reports its version in its data region.
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.li(Reg::R1, plan.data_base);
    t.asm.label("version_word");
    t.asm.li(Reg::R0, 1); // <- the word each release bumps
    t.asm.sw(Reg::R1, 0, Reg::R0);
    t.asm.halt();
    let img = t.finish().expect("assembles");
    let patch_off = (img.expect_symbol("version_word") - plan.code_base) as usize;
    let factory = img.bytes.clone();
    let expected_v1 = attest::measure_region(&factory, plan.code_size);
    b.add_trustlet(&plan, img, TrustletOptions::default())
        .expect("registers");

    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().expect("assembles");
    b.set_os(os_img, &[]);
    let mut p = b.build().expect("boots");

    println!("== slot A: the factory image ==");
    println!(
        "service reports version {}",
        report_version(&mut p, plan.data_base)
    );

    // ---- A good update: stage, reboot, attest, confirm. ----
    let v2 = patch_version(&factory, patch_off, 2);
    let expected_v2 = attest::measure_region(&v2, plan.code_size);
    p.stage_update("service", &v2, 2).expect("stages");
    let block = p.update_block("service").expect("plan").expect("armed");
    println!("\n== staged v2 into slot B (untrusted DRAM, no MPU privilege needed) ==");
    println!(
        "update block: {:?}, attempts {}",
        block.state, block.attempts
    );
    assert_eq!(block.state, SlotState::Written);

    // The running device is untouched until the reboot.
    assert_eq!(p.measurement("service").expect("measured"), expected_v1);

    p.reset().expect("warm reset");
    let block = p.update_block("service").expect("plan").expect("retained");
    println!("\n== warm reset: the Secure Loader chose slot B ==");
    println!(
        "update block: {:?}, attempt {}, last log entry: {}",
        block.state,
        block.attempts,
        block.log.last().expect("logged").verdict.label()
    );
    assert_eq!(block.log.last().unwrap().verdict, BootVerdict::StagedBoot);
    println!(
        "service reports version {}",
        report_version(&mut p, plan.data_base)
    );

    // The commit gate: an *attested* re-measurement, not a local claim.
    let ch = Challenge { nonce: [9; 16] };
    let resp = attest::respond(&mut p, &ch).expect("responds");
    assert!(
        !attest::verify(&KEY, &ch, &resp, &[expected_v1]),
        "the old measurement must no longer verify"
    );
    assert!(attest::verify(&KEY, &ch, &resp, &[expected_v2]));
    println!("attested re-measurement matches the v2 image: commit");
    p.confirm_update("service").expect("confirms");
    let block = p.update_block("service").expect("plan").expect("retained");
    assert_eq!(block.state, SlotState::Confirmed);
    println!(
        "update block: {:?}, anti-rollback floor now {}",
        block.state, block.rollback_min
    );

    // ---- A stale replay: correct bytes, version at the floor. ----
    let v3 = patch_version(&factory, patch_off, 3);
    p.stage_update("service", &v3, 2).expect("stages"); // replayed version!
    p.reset().expect("warm reset");
    let block = p.update_block("service").expect("plan").expect("retained");
    println!("\n== replayed update (version 2 again): rejected by anti-rollback ==");
    println!(
        "update block: {:?}, last log entry: {}",
        block.state,
        block.log.last().expect("logged").verdict.label()
    );
    assert_eq!(block.state, SlotState::RolledBack);
    assert_eq!(block.log.last().unwrap().verdict, BootVerdict::StaleReject);
    println!(
        "service reports version {} (slot A)",
        report_version(&mut p, plan.data_base)
    );

    // ---- A corrupted patch: bit rot in untrusted DRAM. ----
    p.stage_update("service", &v3, 3).expect("stages");
    p.corrupt_staged("service", 8, 3).expect("corrupts");
    p.reset().expect("warm reset");
    let block = p.update_block("service").expect("plan").expect("retained");
    println!("\n== corrupted staged image: rejected by the CRC guard ==");
    println!(
        "update block: {:?}, last log entry: {}",
        block.state,
        block.log.last().expect("logged").verdict.label()
    );
    assert_eq!(block.state, SlotState::RolledBack);
    assert_eq!(block.log.last().unwrap().verdict, BootVerdict::CrcReject);
    let version = report_version(&mut p, plan.data_base);
    println!("service reports version {version} (slot A — never bricked)");
    assert_eq!(version, 1);
    assert_eq!(p.measurement("service").expect("measured"), expected_v1);

    // The whole story is in the retained log, oldest first.
    println!("\nretained boot log ({} entries ever):", block.log_total);
    for e in &block.log {
        println!(
            "  slot {} {} (attempt {})",
            if e.slot == 1 { "B" } else { "A" },
            e.verdict.label(),
            e.attempt
        );
    }

    // Contrast with SMART: its update routine is mask ROM.
    let smart = SmartDevice::new([0; 32], 1024);
    println!();
    println!(
        "SMART baseline: {}",
        smart.try_update_routine().unwrap_err()
    );
    println!();
    println!("field_update OK");
}
