//! Field updates (paper Sections 2.3, 5.3, 6): TrustLite's protection is
//! programmable, so a designated software-update trustlet may be given
//! write access to another trustlet's code region — something SMART's
//! mask-ROM routine fundamentally cannot offer. The OS still cannot touch
//! the code, and the measurement table exposes the change to attestation.
//!
//! Run: `cargo run -p trustlite-bench --example field_update`

use trustlite::attest;
use trustlite::platform::PlatformBuilder;
use trustlite::spec::TrustletOptions;
use trustlite_baselines::SmartDevice;
use trustlite_cpu::{HaltReason, RunExit};
use trustlite_isa::Reg;
use trustlite_mpu::AccessKind;

fn main() {
    let mut b = PlatformBuilder::new();
    let target = b.plan_trustlet("service-v1", 0x200, 0x80, 0x80);
    let updater = b.plan_trustlet("updater", 0x300, 0x80, 0x80);

    // The service returns version 1 in its data region.
    let mut t = target.begin_program();
    t.asm.label("main");
    t.asm.li(Reg::R1, target.data_base);
    t.asm.label("version_word");
    t.asm.li(Reg::R0, 1); // <- the word the update will patch
    t.asm.sw(Reg::R1, 0, Reg::R0);
    t.asm.halt();
    let target_img = t.finish().expect("assembles");
    let patch_addr = target_img.expect_symbol("version_word");
    b.add_trustlet(
        &target,
        target_img,
        TrustletOptions {
            code_writable_by: Some("updater".into()),
            ..Default::default()
        },
    )
    .expect("registers");

    // The updater patches the `li r0, 1` to `li r0, 2`.
    let patched_word = trustlite_isa::encode(trustlite_isa::Instr::Movi {
        rd: Reg::R0,
        imm: 2,
    });
    let mut u = updater.begin_program();
    u.asm.label("main");
    u.asm.li(Reg::R1, patch_addr);
    u.asm.li(Reg::R2, patched_word);
    u.asm.sw(Reg::R1, 0, Reg::R2);
    u.asm.halt();
    b.add_trustlet(
        &updater,
        u.finish().expect("assembles"),
        TrustletOptions::default(),
    )
    .expect("registers");

    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().expect("assembles");
    b.set_os(os_img, &[]);
    let mut p = b.build().expect("boots");

    // Version before the update.
    p.start_trustlet("service-v1").expect("starts");
    p.run(10_000);
    let v1 = p.machine.sys.hw_read32(target.data_base).expect("readable");
    println!("service reports version {v1}");

    // The OS cannot patch the service...
    assert!(!p
        .machine
        .sys
        .mpu
        .allows(p.os.entry + 8, patch_addr, AccessKind::Write));
    println!("OS write access to the service's code: denied by the EA-MPU");

    // ...but the updater can.
    p.machine.halted = None;
    p.start_trustlet("updater").expect("starts");
    let exit = p.run(10_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    println!("updater patched {patch_addr:#010x} in the field");

    p.machine.halted = None;
    p.start_trustlet("service-v1").expect("starts");
    p.run(10_000);
    let v2 = p.machine.sys.hw_read32(target.data_base).expect("readable");
    println!("service now reports version {v2}");
    assert_eq!((v1, v2), (1, 2));

    // The change is visible to attestation: the live hash no longer
    // matches the load-time measurement, until the next reboot re-measures.
    let a = attest::local_attest(&mut p, "service-v1").expect("attests");
    println!(
        "local attestation after update: measurement matches load-time digest = {}",
        a.measurement_ok
    );
    assert!(!a.measurement_ok, "update is attestable");

    // Contrast with SMART.
    let smart = SmartDevice::new([0; 32], 1024);
    println!();
    println!(
        "SMART baseline: {}",
        smart.try_update_routine().unwrap_err()
    );
    println!();
    println!("field_update OK");
}
