//! Preemptive scheduling of trustlets by an untrusted OS (paper
//! Section 3.4): the timer interrupts running trustlets mid-computation;
//! the secure exception engine saves their state to their own stacks,
//! scrubs the registers, and the OS scheduler round-robins them through
//! their `continue()` entries. Every counter finishes exactly — state is
//! never lost, and the OS never sees it.
//!
//! Run: `cargo run -p trustlite-bench --example preemptive_os`

use trustlite::platform::PlatformBuilder;
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite_cpu::vectors;
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_os::scheduler::{build_scheduler_os, ScheduledTask, SchedulerConfig, SCHED_IDT};
use trustlite_os::trustlet_lib;

fn main() {
    let workloads: [(&str, u32); 3] = [("sensor", 60), ("filter", 120), ("logger", 240)];
    let mut b = PlatformBuilder::new();
    let mut plans = Vec::new();
    for (name, iters) in workloads {
        let plan = b.plan_trustlet(name, 0x200, 0x80, 0x100);
        let mut t = plan.begin_program();
        trustlet_lib::emit_preemptible_counter(&mut t.asm, plan.data_base, iters);
        b.add_trustlet(
            &plan,
            t.finish().expect("assembles"),
            TrustletOptions::default(),
        )
        .expect("registers");
        plans.push(plan);
    }
    b.grant_os_peripheral(PeriphGrant {
        base: map::TIMER_MMIO_BASE,
        size: map::PERIPH_MMIO_SIZE,
        perms: Perms::RW,
    });
    let mut os = b.begin_os();
    build_scheduler_os(
        &mut os,
        &SchedulerConfig {
            timer_period: 400,
            tasks: plans
                .iter()
                .map(|p| ScheduledTask {
                    name: p.name.clone(),
                    entry: p.continue_entry(),
                })
                .collect(),
        },
    );
    let os_img = os.finish().expect("assembles");
    b.set_os(os_img, SCHED_IDT);
    let mut p = b.build().expect("boots");

    println!("running 3 busy trustlets under a 400-cycle preemption quantum...");
    p.run(3_000_000);
    println!(
        "platform halted after {} cycles / {} instructions",
        p.machine.cycles, p.machine.instret
    );
    println!();

    println!(
        "{:<10}{:>8}{:>10}{:>14}",
        "trustlet", "target", "counted", "preemptions"
    );
    for (plan, (name, iters)) in plans.iter().zip(workloads) {
        let counted = p.machine.sys.hw_read32(plan.data_base).expect("readable");
        let preemptions = p
            .machine
            .exc_log
            .iter()
            .filter(|r| r.vector == vectors::irq_vector(0) && r.trustlet == Some(plan.tt_index))
            .count();
        println!("{name:<10}{iters:>8}{counted:>10}{preemptions:>14}");
        assert_eq!(counted, iters, "{name} lost work");
    }

    let trustlet_preemptions = p
        .machine
        .exc_log
        .iter()
        .filter(|r| r.trustlet.is_some())
        .count();
    let avg_cost: f64 = {
        let v: Vec<u64> = p
            .machine
            .exc_log
            .iter()
            .filter(|r| r.trustlet.is_some())
            .map(|r| r.entry_cycles)
            .collect();
        v.iter().sum::<u64>() as f64 / v.len() as f64
    };
    println!();
    println!(
        "secure exception engine: {trustlet_preemptions} trustlet interrupts, \
         {avg_cost:.0} cycles each (paper: 42 = 21 regular + 21 secure)"
    );
    println!();
    println!("preemptive_os OK");
}
