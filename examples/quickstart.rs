//! Quickstart: build a TrustLite platform, boot it through the Secure
//! Loader, run a trustlet, and watch the EA-MPU stop the untrusted OS
//! from touching its memory.
//!
//! Run: `cargo run -p trustlite-bench --example quickstart`

use trustlite::platform::PlatformBuilder;
use trustlite::spec::TrustletOptions;
use trustlite_cpu::vectors;
use trustlite_isa::Reg;

fn main() {
    // 1. Plan a trustlet: the builder reserves code/data/stack regions
    //    and a Trustlet Table row before any code is assembled.
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("vault", 0x200, 0x100, 0x100);

    // 2. Write its program. The prologue (entry vector + continue()) is
    //    generated; we provide `main`, which stores a secret in the
    //    trustlet's private data region.
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.li(Reg::R1, plan.data_base);
    t.asm.li(Reg::R0, 0xc0ffee);
    t.asm.sw(Reg::R1, 0, Reg::R0);
    t.asm.halt();
    b.add_trustlet(
        &plan,
        t.finish().expect("assembles"),
        TrustletOptions::default(),
    )
    .expect("registers");

    // 3. Write the untrusted OS: it will try to read the vault.
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.li(Reg::R1, plan.data_base);
    os.asm.lw(Reg::R2, Reg::R1, 0); // <- this must fault
    os.asm.halt();
    os.asm.label("fault_handler");
    os.asm.lw(Reg::R7, Reg::Sp, 0); // faulting address from the frame
    os.asm.halt();
    let os_img = os.finish().expect("assembles");
    b.set_os(os_img, &[(vectors::VEC_MPU_FAULT, "fault_handler")]);

    // 4. Build: stages PROM, runs the Secure Loader (Figure 5), leaves
    //    the machine at the OS entry point.
    let mut p = b.build().expect("boots");
    println!("Secure Loader report:");
    println!("  trustlets loaded   : {:?}", p.report.trustlets);
    println!(
        "  protection regions : {} ({} MPU register writes, 3 per region)",
        p.report.regions_programmed, p.report.mpu_writes
    );
    println!();
    println!("programmed access-control matrix (cf. paper Figure 3):");
    print!("{}", p.access_matrix());

    // 5. The OS runs first — and faults on the vault's data.
    p.run(10_000);
    println!();
    println!(
        "untrusted OS read of {:#010x} -> MPU fault (handler saw address {:#010x})",
        plan.data_base,
        p.machine.regs.get(Reg::R7)
    );
    assert_eq!(p.machine.regs.get(Reg::R2), 0, "nothing leaked");

    // 6. The trustlet itself runs fine through its continue() entry.
    p.machine.halted = None;
    p.start_trustlet("vault").expect("starts");
    p.run(10_000);
    let stored = p
        .machine
        .sys
        .hw_read32(plan.data_base)
        .expect("readable by host");
    println!("trustlet ran and stored {stored:#x} in its private region");
    assert_eq!(stored, 0xc0ffee);
    println!();
    println!("quickstart OK");
}
