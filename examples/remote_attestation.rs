//! Remote attestation (paper Sections 3.6 and 7): the Secure Loader acts
//! as a root of trust for measurement; a verifier challenges the device
//! with a nonce and checks `HMAC(K, nonce || measurements)`. Tampering
//! with a trustlet image changes its measurement and breaks the report.
//!
//! Run: `cargo run -p trustlite-bench --example remote_attestation`

use trustlite::attest::{self, Challenge};
use trustlite::platform::PlatformBuilder;
use trustlite::spec::TrustletOptions;
use trustlite_crypto::sha256::hex;
use trustlite_isa::Reg;

fn build(tampered: bool) -> (trustlite::Platform, Vec<[u8; 32]>) {
    let key = [0x42u8; 32];
    let mut b = PlatformBuilder::new();
    b.platform_key(key);
    let mut expected = Vec::new();
    for (i, name) in ["fw-update", "epay"].iter().enumerate() {
        let plan = b.plan_trustlet(name, 0x200, 0x80, 0x80);
        let mut t = plan.begin_program();
        t.asm.label("main");
        t.asm.li(Reg::R0, 0x1000 + i as u32);
        if tampered && i == 1 {
            // A "malicious build" of the epay trustlet.
            t.asm.li(Reg::R5, 0xbad);
        }
        t.asm.halt();
        let img = t.finish().expect("assembles");
        // What the verifier expects from the *genuine* build.
        if !(tampered && i == 1) {
            expected.push(attest::measure_region(&img.bytes, plan.code_size));
        } else {
            // Verifier still expects the genuine image: rebuild it.
            let mut g = plan.begin_program();
            g.asm.label("main");
            g.asm.li(Reg::R0, 0x1000 + i as u32);
            g.asm.halt();
            let genuine = g.finish().expect("assembles");
            expected.push(attest::measure_region(&genuine.bytes, plan.code_size));
        }
        b.add_trustlet(&plan, img, TrustletOptions::default())
            .expect("registers");
    }
    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().expect("assembles");
    b.set_os(os_img, &[]);
    (b.build().expect("boots"), expected)
}

fn main() {
    let key = [0x42u8; 32];

    // Honest device.
    let (mut device, expected) = build(false);
    let challenge = Challenge {
        nonce: *b"fresh-nonce-0001",
    };
    let response = attest::respond(&mut device, &challenge).expect("device responds");
    println!("honest device:");
    for (i, m) in response.measurements.iter().enumerate() {
        println!("  measurement[{i}] = {}...", &hex(m)[..16]);
    }
    let ok = attest::verify(&key, &challenge, &response, &expected);
    println!("  verifier accepts: {ok}");
    assert!(ok);

    // Tampered device: the epay trustlet was replaced.
    let (mut device, expected) = build(true);
    let challenge = Challenge {
        nonce: *b"fresh-nonce-0002",
    };
    let response = attest::respond(&mut device, &challenge).expect("device responds");
    let ok = attest::verify(&key, &challenge, &response, &expected);
    println!();
    println!("device with tampered 'epay' trustlet:");
    println!("  verifier accepts: {ok}");
    assert!(!ok);

    // Replay: an old response for a new nonce.
    let replay_ok = attest::verify(
        &key,
        &Challenge {
            nonce: *b"fresh-nonce-0003",
        },
        &response,
        &expected,
    );
    println!("  replayed response accepted: {replay_ok}");
    assert!(!replay_ok);

    // Finally, the *in-simulator* attestation service: a trustlet with
    // exclusive key-store access computes HMAC(K, nonce || measurement
    // table) on the crypto accelerator — the SMART-like instantiation of
    // Section 3.6, but field-updatable.
    let key2 = [0x21u8; 32];
    let mut asp = trustlite_bench::build_attest_service(key2, 2).expect("service platform builds");
    let nonce = 0x0dd5_eed5;
    let report = trustlite_bench::challenge_device(&mut asp, nonce).expect("device responds");
    let expected = trustlite_bench::expected_report(&mut asp, &key2, nonce);
    println!();
    println!("in-simulator attestation service (SMART-like instantiation):");
    println!("  challenge nonce {nonce:#010x} -> report word {report:#010x}");
    println!("  verifier recomputation       -> {expected:#010x}");
    assert_eq!(report, expected);
    println!();
    println!("remote_attestation OK");
}
