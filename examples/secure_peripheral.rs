//! Secure peripherals (paper Section 3.3): a trustlet gets *exclusive*
//! MMIO access to the UART, building a trusted console path that the OS
//! can neither observe nor forge — the paper's secure user I/O scenario.
//!
//! Run: `cargo run -p trustlite-bench --example secure_peripheral`

use trustlite::platform::PlatformBuilder;
use trustlite::runtime::emit_uart_print;
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite_cpu::vectors;
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::Perms;

fn main() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("console", 0x400, 0x100, 0x100);
    let mut t = plan.begin_program();
    t.asm.label("main");
    emit_uart_print(&mut t.asm, "CONFIRM TRANSFER? [trusted path]\n");
    t.asm.halt();
    b.add_trustlet(
        &plan,
        t.finish().expect("assembles"),
        TrustletOptions {
            peripherals: vec![PeriphGrant {
                base: map::UART_MMIO_BASE,
                size: map::PERIPH_MMIO_SIZE,
                perms: Perms::RW,
            }],
            ..Default::default()
        },
    )
    .expect("registers");

    // A malicious OS tries to forge the confirmation prompt.
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.li(Reg::R1, map::UART_MMIO_BASE);
    os.asm.li(Reg::R0, b'F' as u32); // "FAKE..."
    os.asm.sw(Reg::R1, 0, Reg::R0);
    os.asm.halt();
    os.asm.label("fault_handler");
    os.asm.halt();
    let os_img = os.finish().expect("assembles");
    b.set_os(os_img, &[(vectors::VEC_MPU_FAULT, "fault_handler")]);
    let mut p = b.build().expect("boots");

    // OS attempt: faults before a byte reaches the wire.
    p.run(10_000);
    let forged = p.uart_output();
    println!("malicious OS tried to write the UART:");
    println!(
        "  -> MPU fault at {:#010x}; UART output so far: {:?}",
        map::UART_MMIO_BASE,
        String::from_utf8_lossy(&forged)
    );
    assert!(forged.is_empty());

    // The console trustlet owns the device.
    p.machine.halted = None;
    p.start_trustlet("console").expect("starts");
    p.run(100_000);
    let out = p.uart_output();
    println!("console trustlet output:");
    println!("  -> {:?}", String::from_utf8_lossy(&out));
    assert_eq!(out, b"CONFIRM TRANSFER? [trusted path]\n");
    println!();
    println!("secure_peripheral OK");
}
