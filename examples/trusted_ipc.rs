//! Trusted IPC (paper Section 4.2.2, Figure 6): trustlet *alice* locally
//! attests trustlet *bob* — Trustlet Table lookup, EA-MPU rule scan, live
//! code hash on the crypto accelerator — then runs the one-round syn/ack
//! handshake. Both sides derive `token = hash(A, B, N_A, N_B)` entirely
//! in simulated code; the host cross-checks the token against the
//! protocol model.
//!
//! Run: `cargo run -p trustlite-bench --example trusted_ipc`

use trustlite_bench::{build_handshake_platform, run_handshake};

fn main() {
    let mut hp = build_handshake_platform(0xbeef).expect("platform builds");
    println!("participants:");
    println!(
        "  alice: id {:#x}, code {:#010x}..{:#010x}",
        hp.alice.id,
        hp.alice.code_base,
        hp.alice.code_end()
    );
    println!(
        "  bob  : id {:#x}, code {:#010x}..{:#010x}",
        hp.bob.id,
        hp.bob.code_base,
        hp.bob.code_end()
    );
    println!();

    let r = run_handshake(&mut hp).expect("handshake runs");
    assert!(r.success, "handshake failed: {r:?}");
    println!("handshake complete in {} cycles:", r.total_cycles);
    println!(
        "  local attestation (table + MPU scan + code hash): {} cycles",
        r.attest_cycles
    );
    println!(
        "  syn/ack round trip + token derivation:            {} cycles",
        r.total_cycles - r.attest_cycles
    );
    println!();
    println!(
        "  nonce_a = {:#010x}, nonce_b = {:#010x}",
        r.nonces.0, r.nonces.1
    );
    println!("  alice's token = {:#010x}", r.token_a);
    println!("  bob's token   = {:#010x}", r.token_b);
    println!("  host protocol-model token = {:#010x}", r.expected_token);
    assert_eq!(r.token_a, r.token_b);
    assert_eq!(r.token_a, r.expected_token);
    println!();
    println!("the channel persists until platform reset: MPU rules cannot change");
    println!("underneath it, so this single inspection amortizes over the session.");
    println!();
    println!("trusted_ipc OK");
}
