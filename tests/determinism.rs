//! Whole-simulation determinism: identical seeds reproduce bit-identical
//! runs (cycles, instruction counts, memory, tokens). This property is
//! what makes the cycle measurements in EXPERIMENTS.md stable and the
//! test suite meaningful.

use trustlite_bench::{build_handshake_platform, run_handshake};
use trustlite_crypto::sha256;

fn state_digest(p: &mut trustlite::Platform) -> [u8; 32] {
    // Digest of the architectural state plus the first pages of SRAM.
    let mut blob = Vec::new();
    blob.extend_from_slice(&p.machine.cycles.to_le_bytes());
    blob.extend_from_slice(&p.machine.instret.to_le_bytes());
    for g in p.machine.regs.gprs {
        blob.extend_from_slice(&g.to_le_bytes());
    }
    blob.extend_from_slice(&p.machine.regs.sp.to_le_bytes());
    blob.extend_from_slice(&p.machine.regs.ip.to_le_bytes());
    let sram = p
        .machine
        .sys
        .bus
        .read_bytes(trustlite_mem::map::SRAM_BASE, 0x4000)
        .expect("sram readable");
    blob.extend_from_slice(&sram);
    sha256(&blob)
}

#[test]
fn identical_seeds_replay_identically() {
    let run = |seed: u64| {
        let mut hp = build_handshake_platform(seed).expect("builds");
        let r = run_handshake(&mut hp).expect("runs");
        (r, state_digest(&mut hp.platform))
    };
    let (r1, d1) = run(777);
    let (r2, d2) = run(777);
    assert_eq!(r1, r2, "measured results replay");
    assert_eq!(d1, d2, "machine state replays bit-identically");
}

#[test]
fn different_seeds_differ_only_in_nonces() {
    let run = |seed: u64| {
        let mut hp = build_handshake_platform(seed).expect("builds");
        run_handshake(&mut hp).expect("runs")
    };
    let r1 = run(1);
    let r2 = run(2);
    assert_ne!(r1.nonces, r2.nonces);
    assert_ne!(r1.token_a, r2.token_a);
    // The control flow (and therefore the cycle counts) is data-independent
    // of the nonce values.
    assert_eq!(r1.total_cycles, r2.total_cycles);
    assert_eq!(r1.attest_cycles, r2.attest_cycles);
}

#[test]
fn scheduling_workload_is_deterministic() {
    let run = || {
        let p = trustlite_bench::boot_platform_with(3, true);
        (
            p.report.mpu_writes,
            p.report.words_copied,
            p.report.estimated_cycles,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn fast_path_caches_are_architecturally_invisible() {
    // The predecode table, EA-MPU grant cache, batched device ticks and
    // bus lookup cache are pure accelerations: running each macro
    // workload with them off and on must produce bit-identical
    // architectural state, cycle counts and instruction counts.
    for workload in ["quickstart", "preemptive_os", "trusted_ipc"] {
        let run = |fast: bool| {
            let mut p =
                trustlite_bench::throughput::build_workload(workload, trustlite::ObsLevel::Off);
            p.machine.sys.set_fast_path(fast);
            let _ = p.run(60_000);
            (p.machine.instret, p.machine.cycles, state_digest(&mut p))
        };
        let (slow_instret, slow_cycles, slow_digest) = run(false);
        let (fast_instret, fast_cycles, fast_digest) = run(true);
        assert_eq!(
            (fast_instret, fast_cycles),
            (slow_instret, slow_cycles),
            "{workload}: fast path changed the observable counters"
        );
        assert_eq!(
            fast_digest, slow_digest,
            "{workload}: fast path changed architectural state"
        );
    }
}
