//! Whole-simulation determinism: identical seeds reproduce bit-identical
//! runs (cycles, instruction counts, memory, tokens). This property is
//! what makes the cycle measurements in EXPERIMENTS.md stable and the
//! test suite meaningful.

use trustlite_bench::{build_handshake_platform, run_handshake, state_digest};

#[test]
fn identical_seeds_replay_identically() {
    let run = |seed: u64| {
        let mut hp = build_handshake_platform(seed).expect("builds");
        let r = run_handshake(&mut hp).expect("runs");
        (r, state_digest(&mut hp.platform))
    };
    let (r1, d1) = run(777);
    let (r2, d2) = run(777);
    assert_eq!(r1, r2, "measured results replay");
    assert_eq!(d1, d2, "machine state replays bit-identically");
}

#[test]
fn different_seeds_differ_only_in_nonces() {
    let run = |seed: u64| {
        let mut hp = build_handshake_platform(seed).expect("builds");
        run_handshake(&mut hp).expect("runs")
    };
    let r1 = run(1);
    let r2 = run(2);
    assert_ne!(r1.nonces, r2.nonces);
    assert_ne!(r1.token_a, r2.token_a);
    // The control flow (and therefore the cycle counts) is data-independent
    // of the nonce values.
    assert_eq!(r1.total_cycles, r2.total_cycles);
    assert_eq!(r1.attest_cycles, r2.attest_cycles);
}

#[test]
fn scheduling_workload_is_deterministic() {
    let run = || {
        let p = trustlite_bench::boot_platform_with(3, true);
        (
            p.report.mpu_writes,
            p.report.words_copied,
            p.report.estimated_cycles,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn fast_path_caches_are_architecturally_invisible() {
    // The predecode table, superblock trace cache, EA-MPU grant cache,
    // batched device ticks and bus lookup cache are pure accelerations:
    // running each macro workload on the interpreted path, the
    // predecode-only fast path and the superblock path must produce
    // bit-identical architectural state, cycle counts and instruction
    // counts. `set_fast_path(false)` must bypass the block table too.
    for workload in trustlite_bench::throughput::WORKLOADS {
        let run = |fast: bool, blocks: bool| {
            let mut p =
                trustlite_bench::throughput::build_workload(workload, trustlite::ObsLevel::Off);
            p.machine.sys.set_fast_path(fast);
            p.machine.sys.set_superblocks(blocks);
            let _ = p.run(60_000);
            (p.machine.instret, p.machine.cycles, state_digest(&mut p))
        };
        let slow = run(false, false);
        let fast = run(true, false);
        let block = run(true, true);
        assert_eq!(
            (fast.0, fast.1),
            (slow.0, slow.1),
            "{workload}: predecode path changed the observable counters"
        );
        assert_eq!(
            fast.2, slow.2,
            "{workload}: predecode path changed architectural state"
        );
        assert_eq!(
            (block.0, block.1),
            (slow.0, slow.1),
            "{workload}: superblock path changed the observable counters"
        );
        assert_eq!(
            block.2, slow.2,
            "{workload}: superblock path changed architectural state"
        );
    }
}
