//! Differential tests: the mechanical differences between TrustLite and
//! the SMART/Sancus baselines that the paper's Sections 6–7 argue from,
//! demonstrated against the executable models.

use trustlite::platform::PlatformBuilder;
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite_baselines::capabilities::{SANCUS, SMART, TRUSTLITE};
use trustlite_baselines::sancus::{SancusConfig, SancusUnit};
use trustlite_baselines::smart::SmartDevice;
use trustlite_cpu::{ExcRecord, HaltReason, RunExit};
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_os::scheduler::{build_scheduler_os, ScheduledTask, SchedulerConfig, SCHED_IDT};
use trustlite_os::trustlet_lib;

/// TrustLite survives interrupting a trusted task; Sancus's policy calls
/// for a platform reset; SMART wipes memory.
#[test]
fn interruption_tolerance_differs() {
    // TrustLite: a trustlet is preempted by the timer and still finishes.
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("worker", 0x200, 0x80, 0x100);
    let mut t = plan.begin_program();
    trustlet_lib::emit_preemptible_counter(&mut t.asm, plan.data_base, 100);
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    b.grant_os_peripheral(PeriphGrant {
        base: map::TIMER_MMIO_BASE,
        size: map::PERIPH_MMIO_SIZE,
        perms: Perms::RW,
    });
    let mut os = b.begin_os();
    build_scheduler_os(
        &mut os,
        &SchedulerConfig {
            timer_period: 300,
            tasks: vec![ScheduledTask {
                name: "worker".into(),
                entry: plan.continue_entry(),
            }],
        },
    );
    let os_img = os.finish().unwrap();
    b.set_os(os_img, SCHED_IDT);
    let mut p = b.build().unwrap();
    let exit = p.run(1_000_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(p.machine.sys.hw_read32(plan.data_base).unwrap(), 100);
    let preemptions = p
        .machine
        .exc_log
        .iter()
        .filter(|r| r.trustlet.is_some())
        .count();
    assert!(preemptions > 0, "the task was really interrupted");

    // Sancus: the same event violates the no-interrupt policy.
    let unit = {
        let mut u = SancusUnit::new(SancusConfig::default());
        // Host-constructed module covering the same notional range.
        let _ = &mut u;
        u
    };
    let rec = ExcRecord {
        vector: 8,
        interrupted_ip: plan.code_base + 0x40,
        trustlet: Some(0),
        entry_cycles: 21,
        at_cycle: 0,
    };
    // With no modules the policy passes; with a module over that range it
    // must flag a reset. (Direct model check.)
    assert!(!unit.interrupt_policy_violated(&rec));

    // SMART: an interrupt during the routine resets and wipes memory.
    let mut smart = SmartDevice::new([9; 32], 512);
    smart.memory.fill(0x77);
    smart.interrupt_during_routine();
    assert!(smart.memory.iter().all(|&b| b == 0));
}

/// TrustLite multi-region flexibility vs the Sancus one-text/one-data
/// shape: a TrustLite trustlet holds a private data region *and* an MMIO
/// window *and* a shared region simultaneously.
#[test]
fn region_flexibility_differs() {
    let mut b = PlatformBuilder::new();
    let shared = b.plan_shared("box", 0x40);
    let plan = b.plan_trustlet("rich", 0x200, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    b.add_trustlet(
        &plan,
        t.finish().unwrap(),
        TrustletOptions {
            peripherals: vec![PeriphGrant {
                base: map::UART_MMIO_BASE,
                size: map::PERIPH_MMIO_SIZE,
                perms: Perms::RW,
            }],
            shared: vec![("box".into(), Perms::RW)],
            ..Default::default()
        },
    )
    .unwrap();
    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    let p = b.build().unwrap();
    let ip = plan.code_base + 16;
    let mpu = &p.machine.sys.mpu;
    use trustlite_mpu::AccessKind::Write;
    assert!(mpu.allows(ip, plan.data_base, Write), "private data");
    assert!(mpu.allows(ip, map::UART_MMIO_BASE, Write), "MMIO window");
    assert!(mpu.allows(ip, shared.base, Write), "shared region");
    // The paper: Sancus wires all module memory into ONE contiguous data
    // region — these three windows are not contiguous.
    let mut spans = [plan.data_base, map::UART_MMIO_BASE, shared.base];
    spans.sort();
    assert!(spans[1] - spans[0] > 0x1000 || spans[2] - spans[1] > 0x1000);
}

/// SMART pays the full attestation pass on every invocation; TrustLite
/// pays once per session.
#[test]
fn invocation_cost_amortization_differs() {
    let mut smart = SmartDevice::new([1; 32], 4096);
    let (_, c1) = smart.attest(b"n1", 0, 4096);
    let (_, c2) = smart.attest(b"n2", 0, 4096);
    let smart_two_interactions = c1 + c2;

    let mut hp = trustlite_bench::build_handshake_platform(55).unwrap();
    let r = trustlite_bench::run_handshake(&mut hp).unwrap();
    assert!(r.success);
    let u = trustlite_bench::measure_untrusted_ipc();
    // After establishment, each further TrustLite message is a jump.
    let trustlite_second_interaction = u.roundtrip_cycles;
    assert!(
        trustlite_second_interaction * 50 < smart_two_interactions,
        "TrustLite {}+{} vs SMART {}",
        r.total_cycles,
        trustlite_second_interaction,
        smart_two_interactions
    );
}

/// The capability matrix is self-consistent with the models.
#[test]
#[allow(clippy::assertions_on_constants)] // pins constant capability claims
fn capability_matrix_consistency() {
    assert!(TRUSTLITE.interruptible_trusted_tasks);
    assert!(!SMART.interruptible_trusted_tasks && !SANCUS.interruptible_trusted_tasks);
    assert!(SMART.max_trusted_services == Some(1));
    assert!(!SMART.field_updates);
    assert!(SMART.reset_requires_memory_wipe && SANCUS.reset_requires_memory_wipe);
    assert!(!TRUSTLITE.reset_requires_memory_wipe);
}

/// Sancus module keys bind the node key and the text measurement; the
/// TrustLite equivalent (loader measurement + platform key HMAC) binds
/// the same inputs. Both reject a tampered module.
#[test]
fn key_derivation_binds_code_identity() {
    let node = [7u8; 32];
    let m_good = trustlite_crypto::sponge_hash(b"module text v1");
    let m_evil = trustlite_crypto::sponge_hash(b"module text v2");
    assert_ne!(
        SancusUnit::derive_key(&node, &m_good),
        SancusUnit::derive_key(&node, &m_evil)
    );
}
