//! Pins every quantitative result of the paper's evaluation, as measured
//! or modelled by this reproduction. Each test cites the table/figure/
//! section it reproduces; the corresponding harness binary prints the
//! same numbers for EXPERIMENTS.md.

use trustlite_bench::{build_handshake_platform, measure_exception_entry, run_handshake};
use trustlite_hwcost::{
    fault_tree_depth, modules_at_budget, sancus_cost, smart_like_cost, table1, trustlite_ext_cost,
    CostPoint, MSP430_BASE,
};

/// Table 1: every published resource number is reproduced exactly by the
/// structural cost model.
#[test]
fn table1_numbers() {
    let t = table1();
    assert_eq!(t.base_core.0, CostPoint::new(5528, 14361), "TrustLite core");
    assert_eq!(t.base_core.1, CostPoint::new(998, 2322), "openMSP430 core");
    assert_eq!(t.ext_base.0, CostPoint::new(278, 417), "TrustLite ext base");
    assert_eq!(t.ext_base.1, CostPoint::new(586, 1138), "Sancus ext base");
    assert_eq!(
        t.per_module.0,
        CostPoint::new(116, 182),
        "TrustLite per module"
    );
    assert_eq!(
        t.per_module.1,
        CostPoint::new(213, 307),
        "Sancus per module"
    );
    assert_eq!(t.exceptions_base, CostPoint::new(34, 22), "exceptions base");
}

/// Figure 7: scaling shape and the 9-vs-20-modules crossover at 200% of
/// the openMSP430 core.
#[test]
fn figure7_shape_and_crossover() {
    let budget = MSP430_BASE.slices() * 2;
    assert_eq!(modules_at_budget(|n| sancus_cost(n).slices(), budget), 9);
    let at20 = trustlite_ext_cost(20, false).slices();
    assert!(
        at20.abs_diff(budget) * 100 < budget,
        "20 TrustLite modules sit on the 200% line"
    );
    // TrustLite stays cheaper than Sancus everywhere in the plotted range.
    for n in 1..=32 {
        assert!(
            trustlite_ext_cost(n, true).slices() < sancus_cost(n).slices(),
            "n={n}"
        );
    }
}

/// Section 5.2: the SMART-like instantiation (394 regs / 599 LUTs).
#[test]
fn smart_like_instantiation() {
    assert_eq!(smart_like_cost(), CostPoint::new(394, 599));
}

/// Section 5.3: three MPU register writes per protection region; the
/// memory-access path gains zero cycles; fault aggregation is
/// logarithmic.
#[test]
fn loader_and_mpu_overheads() {
    for n in [0usize, 1, 2, 4] {
        let p = trustlite_bench::boot_platform_with(n, true);
        assert_eq!(
            p.report.mpu_writes,
            3 * p.report.regions_programmed as u64,
            "3 writes per region at n={n}"
        );
    }
    assert!(fault_tree_depth(32) <= 3, "timing closure up to 32 regions");
}

/// Section 5.4: 21-cycle regular exception entry; +21 (100%) when a
/// trustlet is interrupted, +2 otherwise — *measured* on the simulator.
#[test]
fn exception_entry_cycles() {
    let m = measure_exception_entry();
    assert_eq!(m.regular_os, 21, "regular engine");
    assert_eq!(m.secure_os, 23, "secure engine, non-trustlet (+2)");
    assert_eq!(m.secure_trustlet, 42, "secure engine, trustlet (+21, 100%)");
    // And the paper's framing: well under an i486 context switch.
    assert!(m.secure_trustlet < trustlite_cpu::costs::I486_CONTEXT_SWITCH);
}

/// Section 4.2.2 / 6: trusted IPC needs exactly one round trip, after
/// which both parties hold the same session token; the in-simulator
/// execution matches the host protocol model.
#[test]
fn trusted_ipc_single_round_trip() {
    let mut hp = build_handshake_platform(31415).unwrap();
    let r = run_handshake(&mut hp).unwrap();
    assert!(r.success);
    assert_eq!(r.token_a, r.token_b);
    assert_eq!(r.token_a, r.expected_token);
    // One syn (alice -> bob) and one ack (bob -> alice): no further
    // protocol exceptions or re-entries were needed. The whole exchange
    // fits comfortably in a few thousand cycles, dominated by the two
    // code-region hashes.
    assert!(
        r.total_cycles < 20_000,
        "one-round handshake: {} cycles",
        r.total_cycles
    );
}

/// Untrusted IPC is an RPC jump: entry within a couple of cycles.
#[test]
fn untrusted_ipc_is_a_jump() {
    let u = trustlite_bench::measure_untrusted_ipc();
    assert!(u.call_entry_cycles <= 4, "{}", u.call_entry_cycles);
    assert!(u.roundtrip_cycles < 120, "{}", u.roundtrip_cycles);
}
