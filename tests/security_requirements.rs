//! Experiment ESEC — the paper's Section 2.3 requirements checklist,
//! exercised end-to-end (each test names the requirement it verifies and
//! the Section 6 argument it operationalizes).

use trustlite::attest;
use trustlite::platform::PlatformBuilder;
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite_baselines::SmartDevice;
use trustlite_bench::{build_handshake_platform, run_handshake};
use trustlite_cpu::{vectors, HaltReason, RunExit};
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::{AccessKind, Perms};
use trustlite_os::scheduler::{build_scheduler_os, ScheduledTask, SchedulerConfig, SCHED_IDT};
use trustlite_os::trustlet_lib;

fn timer_grant() -> PeriphGrant {
    PeriphGrant {
        base: map::TIMER_MMIO_BASE,
        size: map::PERIPH_MMIO_SIZE,
        perms: Perms::RW,
    }
}

/// **Data Isolation** — "no other software on the platform can modify
/// their code. Trustlet data can be read or modified ... according to the
/// system policy."
#[test]
fn req_data_isolation() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("iso", 0x200, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    let p = b.build().unwrap();

    let mpu = &p.machine.sys.mpu;
    let foreign = p.os.entry;
    // Code: readable (public), never writable, body not executable.
    assert!(mpu.allows(foreign, plan.code_base + 16, AccessKind::Read));
    assert!(!mpu.allows(foreign, plan.code_base + 16, AccessKind::Write));
    assert!(!mpu.allows(foreign, plan.code_base + 16, AccessKind::Execute));
    // Data: fully private.
    for kind in AccessKind::ALL {
        assert!(!mpu.allows(foreign, plan.data_base, kind));
    }
    // The owner has what it needs.
    let own_ip = plan.code_base + 16;
    assert!(mpu.allows(own_ip, plan.data_base, AccessKind::Write));
    assert!(mpu.allows(own_ip, plan.code_base + 20, AccessKind::Execute));
}

/// **Attestation** — "trustlets can inspect and validate the local
/// platform state without other software being able to manipulate the
/// procedure."
#[test]
fn req_attestation() {
    let mut hp = build_handshake_platform(101).unwrap();
    // The in-simulator local attestation succeeds on the honest platform.
    let r = run_handshake(&mut hp).unwrap();
    assert!(r.success);
    // And the host-model attestation agrees.
    let a = attest::local_attest(&mut hp.platform, "bob").unwrap();
    assert!(a.trusted(), "{a}");
}

/// **Trusted IPC** — "establish a mutually authenticated and confidential
/// communication channel" in one round trip.
#[test]
fn req_trusted_ipc() {
    let mut hp = build_handshake_platform(202).unwrap();
    let r = run_handshake(&mut hp).unwrap();
    assert!(r.success);
    assert_eq!(r.token_a, r.token_b);
    assert_eq!(r.token_a, r.expected_token);
}

/// **Secure Peripherals** — exclusive trustlet access to MMIO devices.
#[test]
fn req_secure_peripherals() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("driver", 0x200, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    b.add_trustlet(
        &plan,
        t.finish().unwrap(),
        TrustletOptions {
            peripherals: vec![PeriphGrant {
                base: map::UART_MMIO_BASE,
                size: map::PERIPH_MMIO_SIZE,
                perms: Perms::RW,
            }],
            ..Default::default()
        },
    )
    .unwrap();
    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    let p = b.build().unwrap();
    let mpu = &p.machine.sys.mpu;
    assert!(mpu.allows(plan.code_base + 16, map::UART_MMIO_BASE, AccessKind::Write));
    assert!(!mpu.allows(p.os.entry, map::UART_MMIO_BASE, AccessKind::Write));
    assert!(!mpu.allows(p.os.entry, map::UART_MMIO_BASE, AccessKind::Read));
}

/// **Fast Startup** — boot does not wipe memory or hash large code; the
/// loader's work is bounded by images + 3 register writes per region.
#[test]
fn req_fast_startup() {
    let p = trustlite_bench::boot_platform_with(4, true);
    let smart = SmartDevice::new([0; 32], map::SRAM_SIZE as usize);
    assert!(p.report.estimated_cycles * 10 < smart.reset_wipe_cycles());
    assert_eq!(p.report.mpu_writes, 3 * p.report.regions_programmed as u64);
}

/// **Protected State** — trustlets keep state across invocations (no
/// store/restore on every call, unlike SMART).
#[test]
fn req_protected_state() {
    // A counter preempted many times still finishes exactly: its state
    // persists in its protected stack across interruptions.
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("stateful", 0x200, 0x80, 0x100);
    let mut t = plan.begin_program();
    trustlet_lib::emit_preemptible_counter(&mut t.asm, plan.data_base, 200);
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    b.grant_os_peripheral(timer_grant());
    let mut os = b.begin_os();
    build_scheduler_os(
        &mut os,
        &SchedulerConfig {
            timer_period: 300,
            tasks: vec![ScheduledTask {
                name: "stateful".into(),
                entry: plan.continue_entry(),
            }],
        },
    );
    let os_img = os.finish().unwrap();
    b.set_os(os_img, SCHED_IDT);
    let mut p = b.build().unwrap();
    let exit = p.run(2_000_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(p.machine.sys.hw_read32(plan.data_base).unwrap(), 200);
    assert!(
        p.machine
            .exc_log
            .iter()
            .filter(|r| r.trustlet.is_some())
            .count()
            > 3
    );
}

/// **Field Updates** — code, data and policy updatable after deployment.
#[test]
fn req_field_updates() {
    let mut b = PlatformBuilder::new();
    let target = b.plan_trustlet("svc", 0x200, 0x80, 0x80);
    let updater = b.plan_trustlet("upd", 0x200, 0x80, 0x80);
    let mut t = target.begin_program();
    t.asm.label("main");
    t.asm.halt();
    b.add_trustlet(
        &target,
        t.finish().unwrap(),
        TrustletOptions {
            code_writable_by: Some("upd".into()),
            ..Default::default()
        },
    )
    .unwrap();
    let patch = target.code_end() - 4;
    let mut u = updater.begin_program();
    u.asm.label("main");
    u.asm.li(Reg::R1, patch);
    u.asm.li(Reg::R2, 0);
    u.asm.sw(Reg::R1, 0, Reg::R2);
    u.asm.halt();
    b.add_trustlet(&updater, u.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    let mut p = b.build().unwrap();
    p.start_trustlet("upd").unwrap();
    let exit = p.run(10_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "update ran: {exit:?}"
    );
    // SMART cannot do this at all.
    assert!(SmartDevice::new([0; 32], 64).try_update_routine().is_err());
}

/// **Fault Tolerance** — a faulting trustlet is terminated by the
/// (untrusted) OS while the platform and its peers keep running.
#[test]
fn req_fault_tolerance() {
    let mut b = PlatformBuilder::new();
    let bad = b.plan_trustlet("bad", 0x200, 0x80, 0x100);
    let good = b.plan_trustlet("good", 0x200, 0x80, 0x100);
    let mut t = bad.begin_program();
    trustlet_lib::emit_fault_injector(&mut t.asm, good.data_base);
    b.add_trustlet(&bad, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    let mut t = good.begin_program();
    trustlet_lib::emit_cooperative_counter(&mut t.asm, good.data_base, 2);
    b.add_trustlet(&good, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    b.grant_os_peripheral(timer_grant());
    let mut os = b.begin_os();
    build_scheduler_os(
        &mut os,
        &SchedulerConfig {
            timer_period: 0,
            tasks: vec![
                ScheduledTask {
                    name: "bad".into(),
                    entry: bad.continue_entry(),
                },
                ScheduledTask {
                    name: "good".into(),
                    entry: good.continue_entry(),
                },
            ],
        },
    );
    let os_img = os.finish().unwrap();
    b.set_os(os_img, SCHED_IDT);
    let mut p = b.build().unwrap();
    let exit = p.run(200_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(
        p.machine.sys.hw_read32(good.data_base).unwrap(),
        2,
        "peer unaffected"
    );
    assert!(p
        .machine
        .exc_log
        .iter()
        .any(|r| r.vector == vectors::VEC_MPU_FAULT && r.trustlet == Some(0)));
}

/// Cross-cutting: the policy auditor (rule-level, sound and complete for
/// additive grants) reports a clean policy on every scenario platform
/// this suite uses.
#[test]
fn req_policy_audit_clean_across_scenarios() {
    let hp = build_handshake_platform(9).unwrap();
    let a = trustlite::audit(&hp.platform);
    assert!(a.is_clean(), "handshake platform: {a}");

    let asp = trustlite_bench::build_attest_service([1; 32], 2).unwrap();
    let a = trustlite::audit(&asp.platform);
    assert!(a.is_clean(), "attestation platform: {a}");

    for n in [1usize, 4] {
        let p = trustlite_bench::boot_platform_with(n, true);
        let a = trustlite::audit(&p);
        assert!(a.is_clean(), "boot({n}): {a}");
    }
}
