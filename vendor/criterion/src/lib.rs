//! Offline shim for the [criterion](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! a dependency-free stand-in covering the API surface its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Throughput`], [`BenchmarkId`]
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once,
//! then timed over a fixed wall-clock window, and mean iteration time
//! (plus derived throughput) is printed. Numbers are indicative, not
//! statistically rigorous — use them for coarse regression spotting.

use std::fmt;
use std::time::{Duration, Instant};

/// How many elements/bytes one iteration processes.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A composite benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// An id consisting of the parameter value only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Passed to benchmark closures; runs and times the iteration body.
pub struct Bencher<'a> {
    result: &'a mut Option<Duration>,
    measure_time: Duration,
}

impl Bencher<'_> {
    /// Times `body`, storing the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up call, then as many timed calls as fit the window.
        let _ = body();
        let start = Instant::now();
        let mut iters: u32 = 0;
        loop {
            let _ = std::hint::black_box(body());
            iters += 1;
            if start.elapsed() >= self.measure_time {
                break;
            }
        }
        *self.result = Some(start.elapsed() / iters);
    }
}

/// The benchmark driver.
pub struct Criterion {
    measure_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep `cargo bench` runs short; this shim is not for statistics.
        Criterion {
            measure_time: Duration::from_millis(300),
        }
    }
}

fn report(name: &str, mean: Duration, throughput: Option<Throughput>) {
    let per_iter = mean.as_secs_f64();
    print!("{name:<48} {:>12.3} us/iter", per_iter * 1e6);
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            print!("  {:>12.0} elem/s", n as f64 / per_iter);
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            print!("  {:>12.0} B/s", n as f64 / per_iter);
        }
        _ => {}
    }
    println!();
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut result = None;
        f(&mut Bencher {
            result: &mut result,
            measure_time: self.measure_time,
        });
        if let Some(mean) = result {
            report(name, mean, None);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut result = None;
        f(&mut Bencher {
            result: &mut result,
            measure_time: self.criterion.measure_time,
        });
        if let Some(mean) = result {
            report(&format!("{}/{id}", self.name), mean, self.throughput);
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut result = None;
        f(
            &mut Bencher {
                result: &mut result,
                measure_time: self.criterion.measure_time,
            },
            input,
        );
        if let Some(mean) = result {
            report(&format!("{}/{id}", self.name), mean, self.throughput);
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Defines the benchmark entry list for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
