//! Offline shim for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build container has no network access to crates.io, so this
//! workspace vendors a minimal, dependency-free re-implementation of the
//! slice of the proptest API its test-suite uses: the [`Strategy`] trait
//! with `prop_map`, range/tuple/`Just`/`any` strategies, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::option::of`,
//! `prop::sample::Index` and the `proptest!`/`prop_assert*!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is deterministic (seeded from the test name, so failures
//! reproduce exactly), and there is no shrinking — a failing case panics
//! with the rendered arguments instead.

use std::ops::Range;

/// Deterministic xorshift64* generator used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a, then avoid the all-zero fixpoint.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values (shrinking-free shim of proptest's trait).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f`, retrying a bounded number
    /// of times.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy: arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0x7f) as u32).unwrap_or('a')
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Numeric types usable as `Range` strategies.
pub trait RangeValue: Copy {
    /// Picks a uniform value in `[lo, hi)`.
    fn pick(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! int_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn pick(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for f64 {
    fn pick(lo: f64, hi: f64, rng: &mut TestRng) -> f64 {
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::pick(self.start, self.end, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A `Vec` strategy with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>` (`None` with probability 1/4).
    pub struct OptionStrategy<S>(S);

    /// Generates `Some` values from `inner` or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An abstract index into a collection of yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Union of same-valued strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union choosing uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Per-block test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Lower than real proptest's 256: several workspace properties
        // boot a full platform per case.
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    /// Alias so `prop::sample::Index`, `prop::collection::vec`, … resolve.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Each function runs `cases` times with fresh
/// deterministic inputs; a panic reports the generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                // Render inputs up front: the body may move them.
                let mut rendered = ::std::string::String::new();
                $(rendered.push_str(&format!("  {} = {:?}\n", stringify!($arg), $arg));)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!("proptest case {case} failed with inputs:\n{rendered}");
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Chooses uniformly among the listed strategies (all must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `assert!` under a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` under a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` under a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
